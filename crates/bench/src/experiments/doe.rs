//! E11/E12/E13 — §4.2: the design-of-experiments figures.

use mde_metamodel::design::{
    best_32_run_7, full_factorial, is_latin, nolh, orthogonal_lh_2x9, randomized_lh,
    resolution_iii_7, resolution_iv_7,
};
use mde_metamodel::poly::{main_effects, PolyModel};
use mde_numeric::dist::{Distribution, Normal};
use mde_numeric::rng::rng_from_seed;

/// E11 — Figure 3: the resolution III 2^{7−4} design, plus the run-count /
/// resolution table of §4.2.
pub fn fig3_report() -> String {
    let mut out = String::new();
    out.push_str("E11 | Figure 3: resolution III design for seven parameters (8 runs)\n\n");
    let ff = resolution_iii_7();
    let d = ff.design();
    out.push_str(&d.render_ascii());
    out.push_str(&format!(
        "\nbalanced: {} | max |column correlation|: {} | computed resolution: {:?}\n",
        d.is_balanced(),
        crate::f(d.max_abs_correlation()),
        ff.resolution()
    ));

    out.push_str("\nRun-count / resolution trade-off for 7 factors (paper §4.2):\n");
    let full = full_factorial(7);
    let r4 = resolution_iv_7();
    let r32 = best_32_run_7();
    let rows = vec![
        vec![
            "full factorial 2^7".into(),
            full.runs().to_string(),
            "VII (none aliased)".into(),
        ],
        vec![
            "2^{7-4} (Fig 3)".into(),
            ff.design().runs().to_string(),
            format!("{:?} (paper: III)", ff.resolution().expect("fractional")),
        ],
        vec![
            "2^{7-3}".into(),
            r4.design().runs().to_string(),
            format!("{:?} (paper: IV)", r4.resolution().expect("fractional")),
        ],
        vec![
            "2^{7-2}".into(),
            r32.design().runs().to_string(),
            format!(
                "{:?} (paper says V; best regular 32-run design is IV — see EXPERIMENTS.md)",
                r32.resolution().expect("fractional")
            ),
        ],
    ];
    out.push_str(&crate::render_table(
        &["design", "runs", "resolution"],
        &rows,
    ));
    out
}

/// The 7-factor test response of the Figure 4 experiment: sparse linear
/// truth plus noise.
fn response(x: &[f64], rng: &mut mde_numeric::rng::Rng) -> f64 {
    let noise = Normal::new(0.0, 0.5).expect("static");
    12.0 + 4.0 * x[0] - 2.5 * x[2] + 1.0 * x[4] + 0.3 * x[6] + noise.sample(rng)
}

/// E12 — Figure 4: the main-effects plot from the Figure 3 design.
pub fn fig4_report() -> String {
    let d = resolution_iii_7().design();
    let mut rng = rng_from_seed(12);
    // 4 replications per run, as a practitioner would.
    let ys: Vec<f64> = d
        .matrix
        .iter()
        .map(|x| (0..4).map(|_| response(x, &mut rng)).sum::<f64>() / 4.0)
        .collect();
    let me = main_effects(&d, &ys);
    let pm = PolyModel::fit(&d.matrix, &ys, 1).expect("linear fit");

    let mut out = String::new();
    out.push_str("E12 | Figure 4: main-effects plot for seven parameters\n");
    out.push_str("truth: y = 12 + 4*x1 - 2.5*x3 + 1*x5 + 0.3*x7 + N(0, 0.5)\n\n");
    out.push_str(&me.render_ascii(&["x1", "x2", "x3", "x4", "x5", "x6", "x7"]));

    out.push_str("\nestimated vs true effects (effect = 2*beta on +/-1 codes):\n");
    let truth = [8.0, 0.0, -5.0, 0.0, 2.0, 0.0, 0.6];
    let mut rows = Vec::new();
    for (j, &truth_j) in truth.iter().enumerate() {
        rows.push(vec![
            format!("x{}", j + 1),
            crate::f(me.effects[j]),
            crate::f(truth_j),
            crate::f(pm.main_effect_coefficient(j)),
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "factor",
            "classical effect",
            "true effect",
            "regression beta",
        ],
        &rows,
    ));

    out.push_str("\nhalf-normal (Daniel) diagnostic, ascending |effect|:\n");
    let mut rows = Vec::new();
    for (j, e, q) in me.half_normal_scores() {
        rows.push(vec![format!("x{}", j + 1), crate::f(e), crate::f(q)]);
    }
    out.push_str(&crate::render_table(
        &["factor", "|effect|", "half-normal quantile"],
        &rows,
    ));
    out.push_str(
        "\n8 runs suffice to rank all 7 main effects (vs 128 for the full factorial) —\n\
         the §4.2 data-reduction claim.\n",
    );
    out
}

/// E13 — Figure 5: Latin hypercube designs.
pub fn fig5_report() -> String {
    let mut out = String::new();
    out.push_str("E13 | Figure 5: Latin hypercube design for two factors, nine runs\n\n");
    let d = orthogonal_lh_2x9();
    out.push_str("Run   x1   x2\n");
    for (i, row) in d.matrix.iter().enumerate() {
        out.push_str(&format!("{:>3}  {:>3}  {:>3}\n", i + 1, row[0], row[1]));
    }
    // Scatter plot, Figure 5 style.
    out.push_str("\n         x2\n");
    for y in (-4..=4).rev() {
        let mut line = String::from(if y == 0 { "  0 +" } else { "    |" });
        for x in -4..=4 {
            let hit = d
                .matrix
                .iter()
                .any(|r| r[0] as i64 == x && r[1] as i64 == y);
            line.push_str(if hit { " *" } else { " ." });
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("    +------------------ x1\n");
    out.push_str(&format!(
        "\nLatin: {} | column correlation: {} (orthogonal)\n",
        is_latin(&d),
        crate::f(d.column_correlation(0, 1)),
    ));

    out.push_str("\nRandomized LH vs NOLH search (max |column correlation|, min distance):\n");
    let mut rows = Vec::new();
    let mut rng = rng_from_seed(5);
    for &(n, r) in &[(2usize, 9usize), (5, 17), (8, 33), (11, 33)] {
        let rand_lh = randomized_lh(n, r, &mut rng);
        let searched = nolh(n, r, 300, &mut rng);
        rows.push(vec![
            format!("{n} factors, {r} runs"),
            crate::f(rand_lh.max_abs_correlation()),
            crate::f(searched.max_abs_correlation()),
            crate::f(rand_lh.min_pairwise_distance()),
            crate::f(searched.min_pairwise_distance()),
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "size",
            "rand LH corr",
            "NOLH corr",
            "rand LH min-dist",
            "NOLH min-dist",
        ],
        &rows,
    ));
    out.push_str(
        "\n'randomized LH designs may not work well unless r >> n' — visible in the corr\n\
         column as n approaches r; the NOLH search restores near-orthogonality.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_effect_estimates_near_truth() {
        let d = resolution_iii_7().design();
        let mut rng = rng_from_seed(12);
        let ys: Vec<f64> = d
            .matrix
            .iter()
            .map(|x| (0..8).map(|_| response(x, &mut rng)).sum::<f64>() / 8.0)
            .collect();
        let me = main_effects(&d, &ys);
        assert!(
            (me.effects[0] - 8.0).abs() < 0.6,
            "x1 effect {}",
            me.effects[0]
        );
        assert!(
            (me.effects[2] + 5.0).abs() < 0.6,
            "x3 effect {}",
            me.effects[2]
        );
        assert!(me.effects[1].abs() < 0.6, "x2 should be inert");
    }
}
