//! E6 — §2.2: the gridfield restrict/regrid commutation rewrite.
//!
//! On a CORIE-scale structured mesh, pushing a target-region restriction
//! below the regrid aggregates only the cells that survive — identical
//! results, a fraction of the work.

use mde_harmonize::gridfield::{
    regrid_then_restrict, restrict_then_regrid, Grid, GridField, Regrid, RegridAgg,
};
use std::sync::Arc;
use std::time::Instant;

/// Regenerate the rewrite cost/equivalence table.
pub fn gridfield_rewrite_report() -> String {
    let mut out = String::new();
    out.push_str("E6 | §2.2: gridfield algebra — restrict/regrid commutation (Howe & Maier)\n");
    out.push_str("fine mesh -> coarse mesh regrid (Sum), then keep only a query region\n\n");

    let mut rows = Vec::new();
    for &(n, selectivity) in &[(64usize, 0.25f64), (128, 0.25), (128, 0.05), (256, 0.05)] {
        let (fine, fidx) = Grid::structured_2d(n, n).expect("mesh");
        let (coarse, cidx) = Grid::structured_2d(n / 4, n / 4).expect("mesh");
        let fine = Arc::new(fine);
        let coarse = Arc::new(coarse);
        let faces = fine.cells_of_dim(2);
        let gf = GridField::bind(
            Arc::clone(&fine),
            2,
            faces.iter().map(|&c| (c % 97) as f64).collect(),
        )
        .expect("bind");
        let op = Regrid {
            assignment: faces
                .iter()
                .map(|&c| {
                    let (i, j) = fidx.face_coords(c);
                    Some(cidx.face(i / 4, j / 4))
                })
                .collect(),
            agg: RegridAgg::Sum,
        };
        // Query region: the lower-left `selectivity` fraction of coarse rows.
        let keep_rows = ((n / 4) as f64 * selectivity).ceil() as usize;
        let keep = |c: usize| cidx.face_coords(c).1 < keep_rows;

        let t0 = Instant::now();
        let (naive, naive_cost) = regrid_then_restrict(&gf, &coarse, 2, &op, keep).expect("naive");
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let (rewritten, rewritten_cost) =
            restrict_then_regrid(&gf, &coarse, 2, &op, keep).expect("rewrite");
        let rewrite_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(naive, rewritten, "rewrite changed the answer");

        rows.push(vec![
            format!("{n}x{n} -> {}x{}", n / 4, n / 4),
            format!("{selectivity:.2}"),
            naive_cost.accumulate_ops.to_string(),
            rewritten_cost.accumulate_ops.to_string(),
            format!(
                "{:.1}x",
                naive_cost.accumulate_ops as f64 / rewritten_cost.accumulate_ops.max(1) as f64
            ),
            format!("{naive_ms:.2} / {rewrite_ms:.2}"),
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "mesh",
            "selectivity",
            "naive agg ops",
            "rewritten agg ops",
            "op reduction",
            "ms naive/rewritten",
        ],
        &rows,
    ));
    out.push_str(
        "\nEquality asserted on every row: the rewrite is an identity (the commutation the\n\
         paper highlights); op reduction ~ 1/selectivity (the optimization opportunity).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shows_op_reduction() {
        let r = gridfield_rewrite_report();
        assert!(r.contains("op reduction"));
        // The 5%-selectivity rows must show a large reduction.
        assert!(r.contains("x"), "{r}");
    }
}
