//! The experiment battery: one module per paper artifact. Each public
//! `*_report` function regenerates its figure/table/claim and returns a
//! printable report. Index in DESIGN.md §4.

mod calibration;
mod doe;
mod dsgd;
mod fig1;
mod fig2;
mod gridfield;
mod indemics;
mod intro;
mod kriging;
mod mcdb;
mod predrange;
mod rangequery;
mod screening;
mod simsql;
mod wildfire;

pub use calibration::calibration_contest_report;
pub use doe::{fig3_report, fig4_report, fig5_report};
pub use dsgd::dsgd_spline_report;
pub use fig1::fig1_report;
pub use fig2::fig2_report;
pub use gridfield::gridfield_rewrite_report;
pub use indemics::indemics_report;
pub use intro::intro_abs_report;
pub use kriging::kriging_accuracy_report;
pub use mcdb::{mcdb_bundles_report, mcdb_risk_report};
pub use predrange::prediction_range_report;
pub use rangequery::rangequery_report;
pub use screening::factor_screening_report;
pub use simsql::simsql_markov_report;
pub use wildfire::wildfire_assimilation_report;

/// One experiment: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// Every experiment as `(id, title, runner)` — the run-all battery.
pub fn all() -> Vec<Experiment> {
    vec![
        (
            "E0",
            "§1: traffic jams and segregation from simple agents",
            intro_abs_report as fn() -> String,
        ),
        ("E1", "Figure 1: the dangers of extrapolation", fig1_report),
        (
            "E2",
            "Figure 2 / §2.3: result caching and g(alpha)",
            fig2_report,
        ),
        (
            "E3",
            "§2.1 MCDB: tuple-bundle execution",
            mcdb_bundles_report,
        ),
        (
            "E4",
            "§2.1 SimSQL: database-valued Markov chains",
            simsql_markov_report,
        ),
        (
            "E5",
            "§2.2: cubic-spline DSGD vs Thomas",
            dsgd_spline_report,
        ),
        (
            "E6",
            "§2.2: gridfield restrict/regrid rewrite",
            gridfield_rewrite_report,
        ),
        (
            "E7",
            "§2.4 Algorithm 1: Indemics intervention",
            indemics_report,
        ),
        ("E8", "§2.4 PDES-MAS: range queries", rangequery_report),
        (
            "E9",
            "§3.1: ABS calibration contest",
            calibration_contest_report,
        ),
        (
            "E10",
            "§3.2 Algorithm 2: wildfire assimilation",
            wildfire_assimilation_report,
        ),
        (
            "E11",
            "Figure 3: resolution III fractional factorial",
            fig3_report,
        ),
        ("E12", "Figure 4: main-effects plot", fig4_report),
        ("E13", "Figure 5: Latin hypercube designs", fig5_report),
        (
            "E14",
            "§4.3: sequential bifurcation screening",
            factor_screening_report,
        ),
        (
            "E15",
            "§4.1: kriging and stochastic kriging",
            kriging_accuracy_report,
        ),
        (
            "E16",
            "§2.1 MCDB-R: risk and threshold queries",
            mcdb_risk_report,
        ),
        (
            "E17",
            "§3.1 open problem: the range of predictions [51]",
            prediction_range_report,
        ),
    ]
}

#[cfg(test)]
mod smoke_tests {
    //! Every experiment runs to completion and mentions its key artifacts.
    //! (Full numeric validation lives in the per-crate unit tests; these
    //! guard the harness itself.)

    use super::*;

    #[test]
    fn fig1_runs() {
        let r = fig1_report();
        assert!(r.contains("extrapolat"), "{r}");
        assert!(r.contains("2011"));
    }

    #[test]
    fn fig2_runs() {
        let r = fig2_report();
        assert!(r.contains("alpha"));
        assert!(r.contains("g(alpha)"));
    }

    #[test]
    fn doe_reports_run() {
        assert!(fig3_report().contains("x7"));
        assert!(fig4_report().contains("effect"));
        assert!(fig5_report().contains("Latin"));
    }

    #[test]
    fn mcdb_reports_run() {
        assert!(mcdb_bundles_report().contains("bundle"));
        assert!(mcdb_risk_report().contains("quantile"));
    }

    #[test]
    fn screening_runs() {
        let r = factor_screening_report();
        assert!(r.contains("128"));
    }
}
