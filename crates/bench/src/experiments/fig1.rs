//! E1 — Figure 1: "The dangers of extrapolation".
//!
//! The paper fits "a simple time series model … to median U.S. housing
//! prices from 1970 to 2006 and then extrapolated to 2011. … the resulting
//! prediction failed spectacularly because it ignored expert information
//! … that might have helped in modeling the housing-price collapse that
//! began in 2006."
//!
//! We have no license to ship the Case-Shiller series, so a synthetic
//! boom-bust index with the same shape (exponential growth to 2006, ~30%
//! collapse by 2011) stands in — the phenomenon is qualitative, not tied
//! to the exact series (see DESIGN.md's substitution table). Three
//! predictors are compared at 2011:
//!
//! * the shallow trend+AR(1) extrapolation (the paper's failing model);
//! * a regime-aware stochastic simulation embodying the "expert
//!   information" (a bubble-correction hazard that grows with
//!   overvaluation);
//! * the actual 2011 value.

use mde_numeric::dist::{Distribution, Normal};
use mde_numeric::rng::rng_from_seed;
use mde_numeric::stats::{quantile, Summary, TrendAr1Model};
use rand::Rng as _;

/// Synthetic housing index 1970..=2011 with the 2006 regime change.
fn housing_series(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = rng_from_seed(seed);
    let noise = Normal::new(0.0, 1.5).expect("static");
    let years: Vec<f64> = (1970..=2011).map(|y| y as f64).collect();
    let values: Vec<f64> = years
        .iter()
        .map(|&y| {
            let base = if y <= 2006.0 {
                100.0 * (0.045 * (y - 1970.0)).exp()
            } else {
                100.0 * (0.045 * 36.0f64).exp() * (1.0 - 0.068 * (y - 2006.0))
            };
            base + noise.sample(&mut rng)
        })
        .collect();
    (years, values)
}

/// The "expert model": a stochastic simulation in which prices grow with
/// the fundamental trend, but each year a correction can trigger with a
/// hazard that rises with overvaluation relative to fundamentals — the
/// kind of mechanism economists and behavioral scientists would supply.
fn expert_simulation(
    fundamentals_growth: f64,
    start_price: f64,
    start_year: f64,
    horizon: u32,
    n_reps: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = rng_from_seed(seed);
    let fundamental_at = |y: f64| 100.0 * (fundamentals_growth * (y - 1970.0)).exp() * 0.55;
    let mut finals = Vec::with_capacity(n_reps);
    for _ in 0..n_reps {
        let mut price = start_price;
        let mut correcting = false;
        for h in 1..=horizon {
            let year = start_year + h as f64;
            let fundamental = fundamental_at(year);
            let overvaluation = (price / fundamental - 1.0).max(0.0);
            if !correcting {
                // Hazard of a correction grows sharply with overvaluation —
                // the experts' knowledge: bubbles this size burst.
                let hazard = 1.0 - (-8.0 * overvaluation).exp();
                if rng.gen::<f64>() < hazard {
                    correcting = true;
                }
            }
            if correcting {
                price *= 0.86 + 0.08 * rng.gen::<f64>(); // 6-14%/yr decline
                if price <= fundamental {
                    correcting = false;
                }
            } else {
                price *= 1.0 + fundamentals_growth + 0.01 * rng.gen::<f64>();
            }
        }
        finals.push(price);
    }
    finals
}

/// Regenerate Figure 1 as a report.
pub fn fig1_report() -> String {
    let (years, values) = housing_series(1);
    let cut = years.iter().position(|&y| y > 2006.0).expect("has 2007");
    let (train_y, train_v) = (&years[..cut], &values[..cut]);
    let actual_2011 = *values.last().expect("has 2011");
    let price_2006 = train_v[cut - 1];

    // Shallow model: trend + AR(1), the paper's failing extrapolation.
    let shallow = TrendAr1Model::fit(train_y, train_v).expect("fit");
    let shallow_2011 = shallow.extrapolate(5);

    // Expert model: regime-aware simulation from the 2006 state.
    let sims = expert_simulation(0.045, price_2006, 2006.0, 5, 2000, 2);
    let expert_mean = Summary::from_slice(&sims).mean();
    let expert_lo = quantile(&sims, 0.05).expect("quantile");
    let expert_hi = quantile(&sims, 0.95).expect("quantile");

    let shallow_err = (shallow_2011 - actual_2011) / actual_2011 * 100.0;
    let expert_err = (expert_mean - actual_2011) / actual_2011 * 100.0;

    let mut out = String::new();
    out.push_str("E1 | Figure 1: the dangers of extrapolation\n");
    out.push_str("Synthetic boom-bust housing index; models trained on 1970-2006 only.\n\n");
    out.push_str(&crate::render_table(
        &["predictor of 2011", "value", "error vs actual"],
        &[
            vec![
                "shallow trend+AR(1) extrapolation".into(),
                crate::f(shallow_2011),
                format!("{shallow_err:+.0}%"),
            ],
            vec![
                "regime-aware simulation (mean)".into(),
                crate::f(expert_mean),
                format!("{expert_err:+.0}%"),
            ],
            vec![
                "regime-aware simulation (5%-95%)".into(),
                format!("[{}, {}]", crate::f(expert_lo), crate::f(expert_hi)),
                "-".into(),
            ],
            vec![
                "actual 2011 value".into(),
                crate::f(actual_2011),
                "0%".into(),
            ],
        ],
    ));
    out.push_str(&format!(
        "\n2006 peak: {} | the shallow model keeps extrapolating the boom ({} by 2011)\n",
        crate::f(price_2006),
        crate::f(shallow_2011),
    ));
    out.push_str(
        "Paper's claim: extrapolation 'failed spectacularly'; expert-informed simulation\n\
         brackets the collapse. Reproduced when shallow error >> expert error.\n",
    );
    out.push_str(&format!(
        "RESULT: |shallow error| = {:.0}% vs |expert error| = {:.0}% -> {}\n",
        shallow_err.abs(),
        expert_err.abs(),
        if shallow_err.abs() > 3.0 * expert_err.abs().max(1.0) {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_model_overshoots_collapse() {
        let r = fig1_report();
        assert!(r.contains("REPRODUCED"), "{r}");
    }

    #[test]
    fn expert_simulation_brackets_actual() {
        let (years, values) = housing_series(1);
        let cut = years.iter().position(|&y| y > 2006.0).unwrap();
        let sims = expert_simulation(0.045, values[cut - 1], 2006.0, 5, 2000, 2);
        let actual = *values.last().unwrap();
        let lo = quantile(&sims, 0.02).unwrap();
        let hi = quantile(&sims, 0.98).unwrap();
        assert!(
            lo < actual && actual < hi,
            "actual {actual} outside [{lo}, {hi}]"
        );
    }
}
