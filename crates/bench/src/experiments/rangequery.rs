//! E8 — §2.4 PDES-MAS: instantaneous range queries over shared state.
//!
//! "find all agents who are, right now, within one mile and who are over
//! 25 years old" — k-d tree vs linear scan across population sizes, plus
//! the SSV-history as-of reads that let ALPs at different simulated times
//! query consistently.

use mde_abs::rangequery::{random_agents, range_query_naive, AgentState, KdTree, SsvStore};
use mde_numeric::rng::rng_from_seed;
use std::time::Instant;

/// Regenerate the range-query throughput table.
pub fn rangequery_report() -> String {
    let mut out = String::new();
    out.push_str("E8 | §2.4 PDES-MAS: range queries — k-d tree vs naive scan\n");
    out.push_str("query: within radius 1.0 (of a 100x100 world) AND age > 25; 200 queries\n\n");

    let mut rows = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut rng = rng_from_seed(7);
        let agents = random_agents(n, 100.0, &mut rng);
        let t0 = Instant::now();
        let tree = KdTree::build(&agents);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let centers: Vec<(f64, f64)> = (0..200)
            .map(|q| ((q * 37 % 100) as f64, (q * 61 % 100) as f64))
            .collect();
        let pred = |a: &AgentState| a.attrs[0] > 25.0;

        let t1 = Instant::now();
        let mut tree_hits = 0usize;
        for &c in &centers {
            tree_hits += tree.range_query(&agents, c, 1.0, pred).len();
        }
        let tree_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let mut naive_hits = 0usize;
        for &c in &centers {
            naive_hits += range_query_naive(&agents, c, 1.0, pred).len();
        }
        let naive_ms = t2.elapsed().as_secs_f64() * 1e3;
        assert_eq!(tree_hits, naive_hits, "index/scan disagreement");

        rows.push(vec![
            n.to_string(),
            format!("{build_ms:.1}"),
            format!("{tree_ms:.2}"),
            format!("{naive_ms:.2}"),
            format!("{:.0}x", naive_ms / tree_ms.max(1e-9)),
            tree_hits.to_string(),
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "agents",
            "build (ms)",
            "k-d 200 queries (ms)",
            "scan 200 queries (ms)",
            "speedup",
            "hits",
        ],
        &rows,
    ));

    // SSV history: as-of reads.
    let mut store = SsvStore::new(&["age"]);
    let mut rng = rng_from_seed(9);
    for t in 0..10 {
        store.record(t as f64, random_agents(1000, 100.0, &mut rng));
    }
    out.push_str(&format!(
        "\nSSV history: {} snapshots; as-of(3.7) resolves to the t=3 snapshot \
         (ALPs 'progress through simulated time at different rates').\n",
        store.len()
    ));
    let snap = store.as_of(3.7).expect("snapshot");
    out.push_str(&format!(
        "as-of(3.7) snapshot size: {} agents\n",
        snap.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_asserts_index_scan_agreement() {
        // The report itself asserts equality on every row; it completing
        // is the test.
        let r = rangequery_report();
        assert!(r.contains("speedup"));
    }
}
