//! E14 — §4.3: factor screening by sequential bifurcation and GP θs.

use mde_metamodel::response::FnResponse;
use mde_metamodel::screening::{gp_screening, sequential_bifurcation, BifurcationConfig};
use mde_numeric::dist::Normal;
use mde_numeric::rng::{rng_from_seed, Rng};

/// Regenerate the screening run-count table.
pub fn factor_screening_report() -> String {
    let mut out = String::new();
    out.push_str("E14 | §4.3: factor screening\n\n");
    out.push_str("A) sequential bifurcation: k factors, g important (effect 2.0, noise 0.3)\n");
    let mut rows = Vec::new();
    for &(k, g) in &[(32usize, 2usize), (128, 8), (512, 8), (512, 32)] {
        let important: Vec<usize> = (0..g).map(|i| i * k / g + k / (2 * g)).collect();
        let imp = important.clone();
        let response = FnResponse::new(k, move |x: &[f64], rng: &mut Rng| {
            let signal: f64 = imp.iter().map(|&j| 2.0 * x[j]).sum();
            signal + 0.3 * Normal::sample_standard(rng)
        });
        let mut rng = rng_from_seed(3);
        let res = sequential_bifurcation(&response, &BifurcationConfig::default(), &mut rng);
        let found_all = res.important == important;
        rows.push(vec![
            k.to_string(),
            g.to_string(),
            res.runs_used.to_string(),
            (k + 1).to_string(),
            if found_all {
                "yes".into()
            } else {
                format!("{:?}", res.important)
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "factors k",
            "important g",
            "SB probes",
            "one-at-a-time probes",
            "all found",
        ],
        &rows,
    ));
    out.push_str(
        "\n'group testing is much faster than testing each individual parameter':\n\
         SB probe counts grow ~ g·log2(k/g), far below k+1.\n\n",
    );

    out.push_str(
        "B) GP-based screening: theta_j as the importance statistic (4 factors, 2 active)\n",
    );
    let response = FnResponse::new(4, |x: &[f64], _rng: &mut Rng| {
        (3.0 * x[0]).sin() + x[2] * x[2]
    });
    let mut rng = rng_from_seed(4);
    let ranked = gp_screening(&response, 25, &mut rng).expect("gp fit");
    let mut rows = Vec::new();
    for (j, theta) in &ranked {
        rows.push(vec![
            format!("x{}", j + 1),
            crate::f(*theta),
            if *j == 0 || *j == 2 {
                "active".into()
            } else {
                "inert".into()
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &["factor (by rank)", "theta_j", "ground truth"],
        &rows,
    ));
    out.push_str(
        "\n'a very low value for theta_j implies ... no variability in model response as\n\
         the value of the jth parameter changes' — inert factors sink to the bottom.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sb_probe_count_scales_sublinearly() {
        let k = 512;
        let important = [100usize, 300];
        let response = FnResponse::new(k, move |x: &[f64], rng: &mut Rng| {
            important.iter().map(|&j| 2.0 * x[j]).sum::<f64>() + 0.3 * Normal::sample_standard(rng)
        });
        let mut rng = rng_from_seed(5);
        let res = sequential_bifurcation(&response, &BifurcationConfig::default(), &mut rng);
        assert_eq!(res.important, vec![100, 300]);
        assert!(
            res.runs_used < 50,
            "SB used {} probes for k=512",
            res.runs_used
        );
    }
}
