//! E10 — §3.2 Algorithm 2: wildfire data assimilation.
//!
//! Tracking error vs particle count for open-loop simulation, the
//! bootstrap-proposal PF [56], and the sensor-aware-proposal PF [57],
//! under both a well-specified and a misspecified spread model.

use mde_assim::pf::{BootstrapProposal, ParticleFilter, Proposal, StateSpaceModel};
use mde_assim::proposal::SensorAwareProposal;
use mde_assim::wildfire::{default_scenario, CellFire, FireModel, FireState};
use mde_numeric::rng::rng_from_seed;

fn centroid_x(s: &FireState, width: usize) -> f64 {
    let (mut sum, mut n) = (0.0, 0.0);
    for (i, c) in s.cells.iter().enumerate() {
        if c.is_burning() || matches!(c, CellFire::Burned) {
            sum += (i % width) as f64;
            n += 1.0;
        }
    }
    if n > 0.0 {
        sum / n
    } else {
        width as f64 / 2.0
    }
}

fn pf_errors<P: Proposal<FireModel>>(
    filter_model: &FireModel,
    proposal: &P,
    truth: &[FireState],
    obs: &[Vec<f64>],
    particles: usize,
    seed: u64,
) -> (f64, f64) {
    let pf = ParticleFilter::new(particles, seed);
    let steps = pf.run(filter_model, proposal, obs);
    let w = filter_model.config().width;
    let mut count_err = 0.0;
    let mut centroid_err = 0.0;
    for (s, t) in steps.iter().zip(truth) {
        count_err += (s.estimate(|x| x.burning_count() as f64) - t.burning_count() as f64).abs();
        centroid_err += (s.estimate(|x| centroid_x(x, w)) - centroid_x(t, w)).abs();
    }
    (
        count_err / truth.len() as f64,
        centroid_err / truth.len() as f64,
    )
}

/// Regenerate the assimilation comparison.
pub fn wildfire_assimilation_report() -> String {
    let steps = 15;
    let truth_model = default_scenario();
    let mut rng = rng_from_seed(31);
    let (truth, obs) = truth_model.simulate_truth(steps, &mut rng);

    let mut out = String::new();
    out.push_str("E10 | §3.2 Algorithm 2: wildfire particle filtering\n\n");

    // Part A: correct model; error vs particle count.
    out.push_str("A) well-specified model: mean |burning-count error| vs N particles\n");
    let mut rows = Vec::new();
    for &n in &[25usize, 100, 400] {
        // Open loop at matched ensemble size.
        let mut orng = rng_from_seed(40);
        let mut ensemble: Vec<FireState> = (0..n)
            .map(|_| truth_model.sample_initial(&mut orng))
            .collect();
        let mut open_err = 0.0;
        for (t, tr) in truth.iter().enumerate() {
            if t > 0 {
                ensemble = ensemble
                    .iter()
                    .map(|s| truth_model.sample_transition(s, &mut orng))
                    .collect();
            }
            let est = ensemble
                .iter()
                .map(|s| s.burning_count() as f64)
                .sum::<f64>()
                / n as f64;
            open_err += (est - tr.burning_count() as f64).abs();
        }
        let (boot_err, _) = pf_errors(&truth_model, &BootstrapProposal, &truth, &obs, n, 41);
        rows.push(vec![
            n.to_string(),
            crate::f(open_err / steps as f64),
            crate::f(boot_err),
        ]);
    }
    out.push_str(&crate::render_table(
        &["particles", "open loop", "PF bootstrap [56]"],
        &rows,
    ));

    // Part B: misspecified ignition; bootstrap vs sensor-aware on location.
    out.push_str(
        "\nB) misspecified ignition (believed (24,16), actual (8,16)): \
         mean |centroid error| in cells\n",
    );
    let mut wrong = truth_model.config().clone();
    wrong.ignition = (24, 16);
    let filter_model = FireModel::new(wrong, (5, 5), 8.0);
    let mut rows = Vec::new();
    for &n in &[50usize, 150] {
        let (_, boot_centroid) = pf_errors(&filter_model, &BootstrapProposal, &truth, &obs, n, 42);
        let aware = SensorAwareProposal {
            sensor_confidence: 0.8,
            ..SensorAwareProposal::default()
        };
        let (_, aware_centroid) = pf_errors(&filter_model, &aware, &truth, &obs, n, 42);
        rows.push(vec![
            n.to_string(),
            crate::f(boot_centroid),
            crate::f(aware_centroid),
        ]);
    }
    out.push_str(&crate::render_table(
        &["particles", "bootstrap [56]", "sensor-aware [57]"],
        &rows,
    ));
    out.push_str(
        "\nExpected shape: (A) assimilation beats open loop, improving with N; (B) when the\n\
         transition density is far from the optimal proposal, [56] degrades and the\n\
         sensor-aware proposal of [57] recovers the fire's location — both as the paper\n\
         reports.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_aware_beats_bootstrap_on_centroid_under_mismatch() {
        let truth_model = default_scenario();
        let mut rng = rng_from_seed(31);
        let (truth, obs) = truth_model.simulate_truth(12, &mut rng);
        let mut wrong = truth_model.config().clone();
        wrong.ignition = (24, 16);
        let filter_model = FireModel::new(wrong, (5, 5), 8.0);
        let (_, boot) = pf_errors(&filter_model, &BootstrapProposal, &truth, &obs, 100, 1);
        let aware = SensorAwareProposal {
            sensor_confidence: 0.8,
            ..SensorAwareProposal::default()
        };
        let (_, sa) = pf_errors(&filter_model, &aware, &truth, &obs, 100, 1);
        assert!(sa < boot, "sensor-aware {sa} vs bootstrap {boot}");
    }
}
