//! E5 — §2.2: solving the cubic-spline tridiagonal system with DSGD.
//!
//! Regenerates the section's quantitative story: accuracy of stratified
//! DSGD against the exact Thomas solve across system sizes, residual
//! decay across cycles, and the shuffle-volume account behind the claim
//! that "the amount of data that needs to be shuffled is negligible".

use mde_harmonize::dsgd::{dsgd_solve, DsgdConfig};
use mde_harmonize::sgd::{sgd_solve, SgdConfig, StepSchedule};
use mde_harmonize::spline::build_spline_system;
use mde_numeric::rng::rng_from_seed;
use std::time::Instant;

fn spline_system(m: usize) -> (mde_numeric::linalg::Tridiagonal, Vec<f64>) {
    let s: Vec<f64> = (0..=m).map(|i| i as f64 * 0.1).collect();
    let d: Vec<f64> = s.iter().map(|&t| (t * 0.9).sin() * 3.0 + 0.2 * t).collect();
    let sys = build_spline_system(&s, &d).expect("valid knots");
    (sys.a, sys.b)
}

/// Regenerate the DSGD-vs-Thomas comparison.
pub fn dsgd_spline_report() -> String {
    let mut out = String::new();
    out.push_str("E5 | §2.2: natural-cubic-spline system min ||Ax-b||^2 by SGD/DSGD\n\n");

    // Accuracy & time vs exact, across sizes.
    let mut rows = Vec::new();
    for &m in &[100usize, 1_000, 10_000, 100_000] {
        let (a, b) = spline_system(m);
        let t0 = Instant::now();
        let exact = a.solve(&b).expect("thomas");
        let thomas_ms = t0.elapsed().as_secs_f64() * 1e3;

        let cfg = DsgdConfig {
            cycles: 600,
            schedule: StepSchedule {
                epsilon0: 0.15,
                alpha: 0.51,
            },
            threads: 4,
            record_residuals: false,
        };
        let t1 = Instant::now();
        let res = dsgd_solve(&a, &b, &cfg, &mut rng_from_seed(1));
        let dsgd_ms = t1.elapsed().as_secs_f64() * 1e3;
        let rms = (res
            .x
            .iter()
            .zip(&exact)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            / exact.len() as f64)
            .sqrt();
        rows.push(vec![
            m.to_string(),
            format!("{thomas_ms:.2}"),
            format!("{dsgd_ms:.1}"),
            crate::f(rms),
            format!("{}", res.stats.boundary_values_exchanged),
            format!("{}", res.stats.exact_solve_shuffle_entries),
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "m (knots)",
            "Thomas (ms)",
            "DSGD 600 cyc (ms)",
            "rms error",
            "DSGD shuffle (f64s)",
            "exact distributed shuffle",
        ],
        &rows,
    ));
    out.push_str(
        "\nSingle-node Thomas is unbeatable locally (the paper agrees: the problem is the\n\
         *shared-nothing* setting). The shuffle columns carry the claim: DSGD moves O(threads)\n\
         boundary values per stratum switch vs Theta(m log m) for a distributed exact solve.\n\n",
    );

    // Residual decay + SGD vs DSGD at equal work.
    let (a, b) = spline_system(2_000);
    let cfg = DsgdConfig {
        cycles: 200,
        schedule: StepSchedule {
            epsilon0: 0.15,
            alpha: 0.51,
        },
        threads: 4,
        record_residuals: true,
    };
    let res = dsgd_solve(&a, &b, &cfg, &mut rng_from_seed(2));
    out.push_str("residual ||Ax - b|| vs DSGD cycle (m = 2000):\n");
    let mut rows = Vec::new();
    for &c in &[0usize, 9, 49, 99, 199] {
        rows.push(vec![
            format!("{}", c + 1),
            crate::f(res.residual_history[c]),
        ]);
    }
    out.push_str(&crate::render_table(&["cycle", "residual"], &rows));

    let sgd_cfg = SgdConfig {
        schedule: StepSchedule {
            epsilon0: 0.15,
            alpha: 0.51,
        },
        steps: 200 * 2_000, // same row-updates as 200 DSGD cycles
        record_every: 0,
    };
    let sgd_res = sgd_solve(&a, &b, &sgd_cfg, &mut rng_from_seed(3));
    out.push_str(&format!(
        "\nequal-work comparison (m=2000, 400k row updates): sequential SGD residual {} vs \
         stratified DSGD residual {}\n",
        crate::f(*sgd_res.residual_history.last().expect("recorded")),
        crate::f(*res.residual_history.last().expect("recorded")),
    ));
    out.push_str(
        "Paper's claims reproduced: DSGD converges to the Thomas solution (rms column),\n\
         stratum-parallelism is exact (thread-invariance tested in the crate), and the\n\
         shuffle volume is negligible.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsgd_accuracy_at_10k() {
        let (a, b) = spline_system(10_000);
        let exact = a.solve(&b).unwrap();
        let cfg = DsgdConfig {
            cycles: 600,
            schedule: StepSchedule {
                epsilon0: 0.15,
                alpha: 0.51,
            },
            threads: 4,
            record_residuals: false,
        };
        let res = dsgd_solve(&a, &b, &cfg, &mut rng_from_seed(1));
        let rms = (res
            .x
            .iter()
            .zip(&exact)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            / exact.len() as f64)
            .sqrt();
        let scale = exact.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        assert!(rms < 0.02 * scale.max(1.0), "rms {rms} (scale {scale})");
    }
}
