//! E17 — §3.1 open problem: the range of predictions for calibrated ABS
//! models (Shi & Brooks [51]), and its repair by finer-grained moments.
//!
//! Calibrate the consumer-market ABS against a *coarse* moment set (final
//! adoption only): many (media_reach, wom_strength) mixes reproduce it, but
//! they disagree about a downstream counterfactual (adoption if media is
//! cut). Adding the finer-grained moments (timing + word-of-mouth share)
//! collapses the acceptable set and the prediction range.

use mde_abs::market::{MarketConfig, MarketModel, MarketParams};
use mde_calibrate::optim::Bounds;
use mde_calibrate::range::{acceptable_set, prediction_range};
use mde_numeric::rng::rng_from_seed;

fn cfg() -> MarketConfig {
    MarketConfig {
        n: 250,
        ticks: 25,
        ..MarketConfig::default()
    }
}

fn simulate_stats(theta: &[f64]) -> Vec<f64> {
    // Average a few seeds so the objective is smooth enough for polishing.
    let mut acc = vec![0.0; 4];
    let reps = 4;
    for s in 0..reps {
        let v = MarketModel::simulate_summary(cfg(), theta, 900 + s);
        for (a, b) in acc.iter_mut().zip(v) {
            *a += b / reps as f64;
        }
    }
    acc
}

/// Counterfactual prediction: final adoption with media cut to near zero
/// (only word of mouth left) — exactly the kind of what-if the calibrated
/// model exists to answer.
fn media_blackout_adoption(theta2: &[f64]) -> f64 {
    // theta2 = (media_reach, wom_strength); propensity fixed at the
    // experiment's known truth. Media is cut to near zero.
    let params = MarketParams::from_slice(&[theta2[0], theta2[1], 0.25]);
    let blackout = [0.001, params.wom_strength, params.purchase_propensity];
    let mut acc = 0.0;
    let reps = 4;
    for s in 0..reps {
        acc += MarketModel::simulate_summary(cfg(), &blackout, 700 + s)[1] / reps as f64;
    }
    acc
}

/// Regenerate the prediction-range experiment.
pub fn prediction_range_report() -> String {
    let theta_star = [0.03, 0.08, 0.25];
    let observed = simulate_stats(&theta_star);
    // Calibrate only (media_reach, wom_strength); propensity fixed at truth
    // to keep the demonstration 2-D and fast.
    let bounds = Bounds::new(vec![(0.005, 0.12), (0.005, 0.2)]).expect("valid bounds");
    let embed = |t2: &[f64]| vec![t2[0], t2[1], theta_star[2]];

    let coarse = |t2: &[f64]| {
        let s = simulate_stats(&embed(t2));
        (s[1] - observed[1]).powi(2) // final adoption only
    };
    let fine = |t2: &[f64]| {
        let s = simulate_stats(&embed(t2));
        s.iter()
            .zip(&observed)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>() // all four moments
    };

    let mut out = String::new();
    out.push_str("E17 | §3.1 open problem: the range of predictions (Shi & Brooks [51])\n");
    out.push_str(&format!(
        "truth theta* = {theta_star:?}; counterfactual: final adoption under a media blackout\n\n"
    ));

    let mut rows = Vec::new();
    let mut widths = Vec::new();
    for (label, tol) in [
        ("coarse (adoption only)", 4e-4),
        ("fine (all 4 moments)", 4e-3),
    ] {
        let mut rng = rng_from_seed(11);
        let set = if label.starts_with("coarse") {
            acceptable_set(coarse, &bounds, tol, 33, &mut rng).expect("set")
        } else {
            acceptable_set(fine, &bounds, tol, 33, &mut rng).expect("set")
        };
        let range = prediction_range(&set, media_blackout_adoption);
        let (lo, hi) = range.unwrap_or((f64::NAN, f64::NAN));
        widths.push(hi - lo);
        rows.push(vec![
            label.to_string(),
            set.members.len().to_string(),
            format!("[{:.3}, {:.3}]", lo, hi),
            format!("{:.3}", hi - lo),
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "moment set",
            "acceptable calibrations",
            "blackout-adoption range",
            "width",
        ],
        &rows,
    ));
    let truth_pred = media_blackout_adoption(&theta_star[..2]);
    out.push_str(&format!(
        "\ntrue counterfactual (at theta*): {truth_pred:.3}\n"
    ));
    out.push_str(
        "Expected shape: with coarse moments, 'multiple calibrations are all deemed\n\
         acceptable but lead to very different predictions'; the finer-grained moment\n\
         set narrows the range — the repair §3.1 calls for.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_moments_narrow_the_prediction_range() {
        let theta_star = [0.03, 0.08, 0.25];
        let observed = simulate_stats(&theta_star);
        let bounds = Bounds::new(vec![(0.005, 0.12), (0.005, 0.2)]).expect("valid bounds");
        let embed = |t2: &[f64]| vec![t2[0], t2[1], theta_star[2]];

        let mut rng = rng_from_seed(11);
        let coarse_set = acceptable_set(
            |t2| {
                let s = simulate_stats(&embed(t2));
                (s[1] - observed[1]).powi(2)
            },
            &bounds,
            4e-4,
            33,
            &mut rng,
        )
        .unwrap();
        let mut rng = rng_from_seed(11);
        let fine_set = acceptable_set(
            |t2| {
                let s = simulate_stats(&embed(t2));
                s.iter()
                    .zip(&observed)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum()
            },
            &bounds,
            4e-3,
            33,
            &mut rng,
        )
        .unwrap();
        assert!(
            coarse_set.members.len() >= 2,
            "coarse calibration should be under-identified ({} members)",
            coarse_set.members.len()
        );
        assert!(!fine_set.members.is_empty(), "fine set must be non-empty");
        let (clo, chi) = prediction_range(&coarse_set, media_blackout_adoption).unwrap();
        let (flo, fhi) = prediction_range(&fine_set, media_blackout_adoption).unwrap();
        assert!(
            fhi - flo < chi - clo,
            "fine range [{flo}, {fhi}] should be narrower than coarse [{clo}, {chi}]"
        );
    }
}
