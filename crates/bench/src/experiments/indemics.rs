//! E7 — §2.4 Algorithm 1: the Indemics intervention loop.
//!
//! "Vaccinate preschoolers if more than 1% are sick", expressed as SQL
//! queries over the exported network tables, with the epidemic engine in
//! the HPC role — compared against no intervention and against a
//! quarantine policy, over several stochastic replicates.

use mde_abs::epidemic::{
    run_with_policy, EpidemicConfig, EpidemicModel, HealthState, Intervention, Person,
};
use mde_mcdb::prelude::*;
use mde_mcdb::query::AggSpec;

fn preschool_attack(m: &EpidemicModel) -> f64 {
    let kids: Vec<&Person> = m
        .people()
        .iter()
        .filter(|p| (0..=4).contains(&p.age))
        .collect();
    kids.iter()
        .filter(|p| {
            matches!(
                p.state,
                HealthState::Infected { .. } | HealthState::Recovered
            )
        })
        .count() as f64
        / kids.len().max(1) as f64
}

#[derive(Clone, Copy, PartialEq)]
enum Policy {
    None,
    VaccinatePreschool,
    QuarantineInfected,
}

fn run(policy: Policy, seed: u64) -> (EpidemicModel, usize) {
    let cfg = EpidemicConfig {
        transmission_rate: 0.05,
        initial_infected: 10,
        ..EpidemicConfig::default()
    };
    let mut m = EpidemicModel::synthetic(cfg, 1500, seed);
    let mut interventions = 0usize;
    run_with_policy(&mut m, 120, seed ^ 0xbeef, |catalog, _day| {
        match policy {
            Policy::None => vec![],
            Policy::VaccinatePreschool => {
                // Algorithm 1, line for line.
                let preschool = Plan::scan("Person").filter(
                    Expr::col("age")
                        .ge(Expr::lit(0))
                        .and(Expr::col("age").le(Expr::lit(4))),
                );
                let n_preschool = catalog
                    .query(
                        &preschool
                            .clone()
                            .aggregate(&[], vec![AggSpec::count_star("n")]),
                    )
                    .and_then(|t| t.scalar())
                    .and_then(|v| v.as_i64())
                    .expect("count");
                let n_infected = catalog
                    .query(
                        &preschool
                            .clone()
                            .join(Plan::scan("InfectedPerson"), &[("pid", "pid")])
                            .aggregate(&[], vec![AggSpec::count_star("n")]),
                    )
                    .and_then(|t| t.scalar())
                    .and_then(|v| v.as_i64())
                    .expect("join count");
                if n_preschool > 0 && n_infected * 100 > n_preschool {
                    interventions += 1;
                    let pids = catalog
                        .query(&preschool.project(&[("pid", Expr::col("pid"))]))
                        .expect("pids")
                        .column("pid")
                        .expect("pid col")
                        .iter()
                        .map(|v| v.as_i64().expect("int"))
                        .collect();
                    vec![Intervention::Vaccinate(pids)]
                } else {
                    vec![]
                }
            }
            Policy::QuarantineInfected => {
                let pids: Vec<i64> = catalog
                    .query(&Plan::scan("InfectedPerson"))
                    .expect("scan")
                    .column("pid")
                    .expect("pid col")
                    .iter()
                    .map(|v| v.as_i64().expect("int"))
                    .collect();
                if pids.is_empty() {
                    vec![]
                } else {
                    interventions += 1;
                    vec![Intervention::Quarantine(pids)]
                }
            }
        }
    })
    .expect("policy run");
    (m, interventions)
}

/// Regenerate the Algorithm 1 comparison.
pub fn indemics_report() -> String {
    let mut out = String::new();
    out.push_str("E7 | §2.4 Algorithm 1: query-driven interventions (Indemics)\n");
    out.push_str("1500 people, 120 days, 3 stochastic replicates per policy\n\n");
    let mut rows = Vec::new();
    for (name, policy) in [
        ("no intervention", Policy::None),
        (
            "Algorithm 1 (vaccinate preschool @ >1%)",
            Policy::VaccinatePreschool,
        ),
        (
            "quarantine infected (test & trace)",
            Policy::QuarantineInfected,
        ),
    ] {
        let (mut overall, mut preschool, mut ivs) = (0.0, 0.0, 0usize);
        let reps = 3;
        for s in 0..reps {
            let (m, n_iv) = run(policy, 100 + s);
            overall += m.attack_rate() / reps as f64;
            preschool += preschool_attack(&m) / reps as f64;
            ivs += n_iv;
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", overall * 100.0),
            format!("{:.1}%", preschool * 100.0),
            (ivs / reps as usize).to_string(),
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "policy",
            "overall attack rate",
            "preschool attack rate",
            "intervention days (avg)",
        ],
        &rows,
    ));
    out.push_str(
        "\nThe Algorithm 1 policy slashes the preschool attack rate (the targeted\n\
         subpopulation) while SQL expresses both the trigger condition and the subset —\n\
         the paper's 'interactive extension to partially observed MDPs'.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaccination_protects_preschoolers_in_most_replicates() {
        let mut better = 0;
        for s in 0..3 {
            let (base, _) = run(Policy::None, 200 + s);
            let (vacc, _) = run(Policy::VaccinatePreschool, 200 + s);
            if preschool_attack(&vacc) <= preschool_attack(&base) {
                better += 1;
            }
        }
        assert!(better >= 2, "policy failed in most replicates");
    }
}
