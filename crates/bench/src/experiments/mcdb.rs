//! E3 / E16 — §2.1 MCDB: tuple-bundle execution and MCDB-R risk queries.

use mde_mcdb::bundle::{execute_bundled, BundledCatalog, BundledTable};
use mde_mcdb::mc::{GroupedMonteCarloQuery, MonteCarloQuery};
use mde_mcdb::prelude::*;
use mde_mcdb::query::{AggFunc, AggSpec};
use mde_mcdb::vg::NormalVg;
use mde_numeric::rng::rng_from_seed;
use std::sync::Arc;
use std::time::Instant;

fn catalog(n_items: usize) -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build(
            "ITEMS",
            &[("IID", DataType::Int), ("REGION", DataType::Str)],
        )
        .rows((0..n_items).map(|i| {
            vec![
                Value::from(i as i64),
                Value::from(["east", "west", "north", "south"][i % 4]),
            ]
        }))
        .finish()
        .expect("static"),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(100.0), Value::from(20.0)])
        .finish()
        .expect("static"),
    );
    db
}

fn sales_spec() -> RandomTableSpec {
    RandomTableSpec::builder("SALES")
        .for_each(Plan::scan("ITEMS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_query(Plan::scan("PARAMS"))
        .select(&[
            ("IID", Expr::col("IID")),
            ("REGION", Expr::col("REGION")),
            ("AMT", Expr::col("VALUE")),
        ])
        .build()
        .expect("valid spec")
}

fn revenue_plan() -> Plan {
    Plan::scan("SALES")
        .filter(Expr::col("REGION").eq(Expr::lit("east")))
        .project(&[("REV", Expr::col("AMT").mul(Expr::lit(1.1)))])
        .aggregate(
            &[],
            vec![AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("REV"))],
        )
}

/// E3: tuple bundles vs naive N-fold execution — same answers, one plan
/// execution.
pub fn mcdb_bundles_report() -> String {
    let mut out = String::new();
    out.push_str("E3 | §2.1 MCDB: tuple-bundle execution vs naive per-iteration execution\n");
    out.push_str("query: SELECT SUM(1.1*AMT) FROM SALES WHERE REGION='east' (N MC iterations)\n\n");
    let mut rows = Vec::new();
    for &(n_items, n_iters) in &[(100usize, 100usize), (500, 200), (1000, 500)] {
        let db = catalog(n_items);
        let spec = sales_spec();
        let plan = revenue_plan();

        // Bundled: generate once, execute the plan once.
        let mut rng = rng_from_seed(1);
        let t0 = Instant::now();
        let bundled = BundledTable::from_spec(&spec, &db, n_iters, &mut rng).expect("bundle");
        let gen_time = t0.elapsed();
        let mut bc = BundledCatalog::new(n_iters);
        bc.insert(bundled.clone()).expect("matching iters");
        let t1 = Instant::now();
        let bundled_result = execute_bundled(&plan, &bc).expect("bundled exec");
        let bundle_exec = t1.elapsed();
        let bundle_samples = bundled_result.scalar_samples().expect("scalar");

        // Naive: instantiate and run the ordinary executor N times over the
        // same realizations (identical answers by construction).
        let t2 = Instant::now();
        let mut naive_samples = Vec::with_capacity(n_iters);
        for i in 0..n_iters {
            let mut cat = Catalog::new();
            cat.insert(bundled.instantiate(i).expect("iteration"));
            naive_samples.push(
                cat.query_unoptimized(&plan)
                    .expect("naive exec")
                    .scalar()
                    .expect("scalar")
                    .as_f64()
                    .expect("float"),
            );
        }
        let naive_exec = t2.elapsed();

        assert_eq!(bundle_samples, naive_samples, "bundle/naive divergence");
        rows.push(vec![
            format!("{n_items}x{n_iters}"),
            format!("{:.1}", gen_time.as_secs_f64() * 1e3),
            format!("{:.1}", bundle_exec.as_secs_f64() * 1e3),
            format!("{:.1}", naive_exec.as_secs_f64() * 1e3),
            format!(
                "{:.1}x",
                naive_exec.as_secs_f64() / bundle_exec.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "items x iters",
            "generate (ms)",
            "bundle exec (ms)",
            "naive exec (ms)",
            "exec speedup",
        ],
        &rows,
    ));
    out.push_str(
        "\nSemantics verified: per-iteration results identical. Paper's claim — executing\n\
         the plan once over bundles beats N-fold execution — holds in the exec columns.\n",
    );
    out
}

/// E16: MCDB-R risk analysis (extreme quantiles) and threshold queries.
pub fn mcdb_risk_report() -> String {
    let db = catalog(200);
    let q = MonteCarloQuery::new(vec![sales_spec()], revenue_plan());
    let res = q.run_parallel(&db, 4000, 7, 4).expect("MC run");

    // Truth: east region has 50 items; total = 1.1 * Σ N(100, 20) ⇒
    // N(5500, 1.1·20·√50 ≈ 155.6).
    let true_mean = 5500.0;
    let true_std = 1.1 * 20.0 * (50.0f64).sqrt();
    let z99 = 2.326_347_874;

    let mut out = String::new();
    out.push_str("E16 | §2.1 MCDB-R: risk (extreme quantiles) and threshold queries\n");
    out.push_str("east-region revenue distribution, 4000 MC iterations\n\n");
    let mut rows = Vec::new();
    for &(label, p, truth) in &[
        ("median", 0.5, true_mean),
        ("q90", 0.9, true_mean + 1.2816 * true_std),
        ("q99 (VaR)", 0.99, true_mean + z99 * true_std),
        ("q999", 0.999, true_mean + 3.0902 * true_std),
    ] {
        let est = res.quantile(p).expect("quantile");
        rows.push(vec![
            label.to_string(),
            crate::f(est),
            crate::f(truth),
            format!("{:+.1}%", (est - truth) / truth * 100.0),
        ]);
    }
    out.push_str(&crate::render_table(
        &["quantile", "estimate", "closed form", "error"],
        &rows,
    ));

    out.push_str("\nThreshold queries (Perez et al.): is P(revenue > x) >= p?\n");
    let mut trows = Vec::new();
    for &(x, p) in &[(5400.0, 0.5), (5500.0, 0.5), (5800.0, 0.5), (5700.0, 0.1)] {
        let ci = res.prob_above(x, 0.95).expect("wilson");
        let decision = res.threshold_decision(x, p, 0.95).expect("decision");
        trows.push(vec![
            format!("P(rev > {x}) >= {p}?"),
            format!("{:.3}", ci.estimate),
            format!("[{:.3}, {:.3}]", ci.lo, ci.hi),
            match decision {
                Some(true) => "YES".into(),
                Some(false) => "NO".into(),
                None => "inconclusive".into(),
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &["query", "P-hat", "95% Wilson CI", "decision"],
        &trows,
    ));

    // The paper's verbatim grouped threshold query: "Which regions will
    // see more than a 2% decline in sales with at least 50% probability?"
    out.push_str(
        "\nWhich regions will see more than a 2% decline in sales with >= 50% probability?\n",
    );
    let mut db2 = Catalog::new();
    db2.insert(
        Table::build(
            "REGIONS",
            &[
                ("NAME", DataType::Str),
                ("LAST_YEAR", DataType::Float),
                ("FORECAST_MEAN", DataType::Float),
            ],
        )
        .row(vec![
            Value::from("east"),
            Value::from(1000.0),
            Value::from(1010.0),
        ])
        .row(vec![
            Value::from("west"),
            Value::from(1000.0),
            Value::from(985.0),
        ])
        .row(vec![
            Value::from("north"),
            Value::from(1000.0),
            Value::from(940.0),
        ])
        .row(vec![
            Value::from("south"),
            Value::from(1000.0),
            Value::from(979.0),
        ])
        .finish()
        .expect("static"),
    );
    let spec = RandomTableSpec::builder("NEXT_SALES")
        .for_each(Plan::scan("REGIONS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_exprs(&[Expr::col("FORECAST_MEAN"), Expr::lit(30.0)])
        .select(&[
            ("REGION", Expr::col("NAME")),
            (
                "REL_CHANGE",
                Expr::col("VALUE")
                    .sub(Expr::col("LAST_YEAR"))
                    .div(Expr::col("LAST_YEAR")),
            ),
        ])
        .build()
        .expect("valid spec");
    let grouped = GroupedMonteCarloQuery::new(
        vec![spec],
        Plan::scan("NEXT_SALES").aggregate(
            &["REGION"],
            vec![AggSpec::new(
                "CHANGE",
                AggFunc::Avg,
                Expr::col("REL_CHANGE"),
            )],
        ),
        "REGION",
        "CHANGE",
    );
    let res = grouped.run(&db2, 2000, 17).expect("grouped MC");
    let decisions = res.threshold_below(-0.02, 0.5, 0.95).expect("decisions");
    let mut grows = Vec::new();
    for (g, decision) in &decisions {
        let r = res.group(g).expect("group present");
        let p = r.prob_below(-0.02, 0.95).expect("wilson");
        grows.push(vec![
            g.to_string(),
            format!("{:.3}", p.estimate),
            match decision {
                Some(true) => "YES — flag this region".into(),
                Some(false) => "no".into(),
                None => "inconclusive".into(),
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &["region", "P(decline > 2%)", "decision"],
        &grows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risk_quantiles_match_closed_form() {
        let db = catalog(200);
        let q = MonteCarloQuery::new(vec![sales_spec()], revenue_plan());
        let res = q.run_parallel(&db, 2000, 7, 4).unwrap();
        let true_mean = 5500.0;
        let true_std = 1.1 * 20.0 * (50.0f64).sqrt();
        let q99 = res.quantile(0.99).unwrap();
        let expected = true_mean + 2.3263 * true_std;
        assert!(
            ((q99 - expected) / expected).abs() < 0.02,
            "q99 {q99} vs {expected}"
        );
    }
}
