//! E9 — §3.1: the ABS calibration contest.
//!
//! Ground-truth market ABS with known θ*; MSM objective; three optimizers
//! at comparable simulation budgets: random search (the baseline §3.1 says
//! heuristics vastly improve on), Nelder–Mead, the Fabretti-style genetic
//! algorithm, and the Salle–Yildizoglu DOE+kriging surrogate.

use mde_abs::market::{MarketConfig, MarketModel, MarketParams};
use mde_calibrate::kriging_cal::{kriging_calibrate, KrigingCalConfig};
use mde_calibrate::msm::{MsmProblem, Simulator};
use mde_calibrate::optim::{genetic_algorithm, random_search, Bounds, GaConfig};
use mde_numeric::rng::rng_from_seed;

fn observed(cfg: MarketConfig, theta_star: &MarketParams) -> Vec<f64> {
    let mut obs = vec![0.0; 4];
    let reps = 16;
    for seed in 0..reps {
        let s = MarketModel::simulate_summary(cfg, &theta_star.to_vec(), 700 + seed);
        for (o, v) in obs.iter_mut().zip(s) {
            *o += v / reps as f64;
        }
    }
    obs
}

/// Regenerate the calibration contest table.
pub fn calibration_contest_report() -> String {
    let cfg = MarketConfig {
        n: 300,
        ticks: 30,
        ..MarketConfig::default()
    };
    let theta_star = MarketParams {
        media_reach: 0.03,
        wom_strength: 0.06,
        purchase_propensity: 0.2,
    };
    let obs = observed(cfg, &theta_star);
    let simulator: &Simulator =
        &|theta: &[f64], seed: u64| MarketModel::simulate_summary(cfg, theta, seed);
    let bounds =
        Bounds::new(vec![(0.005, 0.15), (0.005, 0.25), (0.05, 0.6)]).expect("valid bounds");
    let err = |x: &[f64]| {
        x.iter()
            .zip(theta_star.to_vec())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    };

    let mut rows = Vec::new();

    // Random search.
    let p_rs = MsmProblem::new(obs.clone(), simulator, 4, 31);
    let mut rng = rng_from_seed(1);
    let rs = random_search(|t| p_rs.objective(t), &bounds, 130, &mut rng);
    rows.push(vec![
        "random search".into(),
        format!("[{:.3}, {:.3}, {:.3}]", rs.x[0], rs.x[1], rs.x[2]),
        crate::f(rs.fx),
        p_rs.simulator_evals().to_string(),
        crate::f(err(&rs.x)),
    ]);

    // Nelder-Mead on the MSM objective.
    let p_nm = MsmProblem::new(obs.clone(), simulator, 4, 31);
    let nm = p_nm.calibrate(&[0.05, 0.05, 0.3], 130).expect("NM");
    rows.push(vec![
        "Nelder-Mead (MSM)".into(),
        format!("[{:.3}, {:.3}, {:.3}]", nm.x[0], nm.x[1], nm.x[2]),
        crate::f(nm.fx),
        p_nm.simulator_evals().to_string(),
        crate::f(err(&nm.x)),
    ]);

    // Genetic algorithm (Fabretti).
    let p_ga = MsmProblem::new(obs.clone(), simulator, 4, 31);
    let mut rng = rng_from_seed(2);
    let ga = genetic_algorithm(
        |t| p_ga.objective(t),
        &bounds,
        &GaConfig {
            population: 14,
            generations: 8,
            ..GaConfig::default()
        },
        &mut rng,
    );
    rows.push(vec![
        "genetic algorithm (Fabretti)".into(),
        format!("[{:.3}, {:.3}, {:.3}]", ga.x[0], ga.x[1], ga.x[2]),
        crate::f(ga.fx),
        p_ga.simulator_evals().to_string(),
        crate::f(err(&ga.x)),
    ]);

    // DOE + kriging surrogate (Salle & Yildizoglu).
    let p_kc = MsmProblem::new(obs.clone(), simulator, 4, 31);
    let mut rng = rng_from_seed(3);
    let kc = kriging_calibrate(
        |t, _| p_kc.objective(t),
        &bounds,
        &KrigingCalConfig {
            design_runs: 25,
            infill_rounds: 5,
            ..KrigingCalConfig::default()
        },
        &mut rng,
    )
    .expect("kriging calibration");
    rows.push(vec![
        "NOLH + kriging (Salle-Yildizoglu)".into(),
        format!(
            "[{:.3}, {:.3}, {:.3}]",
            kc.best.x[0], kc.best.x[1], kc.best.x[2]
        ),
        crate::f(kc.best.fx),
        p_kc.simulator_evals().to_string(),
        crate::f(err(&kc.best.x)),
    ]);

    let mut out = String::new();
    out.push_str("E9 | §3.1: calibration contest on the consumer-market ABS\n");
    out.push_str(&format!(
        "true theta* = {:?}; observed stats (awareness, adoption, t-half, wom-share) = \
         [{:.3}, {:.3}, {:.3}, {:.3}]\n\n",
        theta_star.to_vec(),
        obs[0],
        obs[1],
        obs[2],
        obs[3]
    ));
    out.push_str(&crate::render_table(
        &[
            "method",
            "theta-hat",
            "J(theta-hat)",
            "sim evals",
            "||theta err||",
        ],
        &rows,
    ));
    out.push_str(
        "\nExpected shape (per §3.1): heuristics and surrogates beat random sampling at\n\
         comparable budgets; the kriging route spends far fewer expensive evaluations.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_beats_random_search_on_objective() {
        let cfg = MarketConfig {
            n: 200,
            ticks: 25,
            ..MarketConfig::default()
        };
        let theta_star = MarketParams {
            media_reach: 0.03,
            wom_strength: 0.06,
            purchase_propensity: 0.2,
        };
        let obs = observed(cfg, &theta_star);
        let simulator: &Simulator =
            &|theta: &[f64], seed: u64| MarketModel::simulate_summary(cfg, theta, seed);
        let bounds =
            Bounds::new(vec![(0.005, 0.15), (0.005, 0.25), (0.05, 0.6)]).expect("valid bounds");
        let p1 = MsmProblem::new(obs.clone(), simulator, 3, 5);
        let nm = p1.calibrate(&[0.05, 0.05, 0.3], 100).unwrap();
        let p2 = MsmProblem::new(obs, simulator, 3, 5);
        let mut rng = rng_from_seed(9);
        let rs = random_search(|t| p2.objective(t), &bounds, 100, &mut rng);
        assert!(nm.fx <= rs.fx * 1.5, "NM {} vs RS {}", nm.fx, rs.fx);
    }
}
