//! Experiment harness for the PODS 2014 reproduction.
//!
//! Every figure, algorithm, and quantitative claim of the paper has a
//! regeneration function in [`experiments`] that produces a printable
//! report; thin binaries under `src/bin/` wrap them one-per-experiment,
//! and `run_all_experiments` executes the full battery (the source of the
//! numbers recorded in EXPERIMENTS.md). Criterion benches under `benches/`
//! measure the performance-critical kernels (tuple bundles, DSGD, k-d
//! range queries, the particle filter, GP fitting, gridfield rewrites).
//!
//! See DESIGN.md §4 for the experiment ↔ paper-artifact index.

pub mod experiments;

/// Render a simple aligned table: header plus rows of equal arity.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(out.len() - 1));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float compactly for report tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["bbbb".into(), "22".into()],
            ],
        );
        assert!(t.contains("name"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.500");
        assert!(f(12345.0).contains('e'));
        assert!(f(0.0001).contains('e'));
    }
}
