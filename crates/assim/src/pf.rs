//! The particle filter — Algorithm 2 of the paper, over a generic hidden
//! Markov (state-space) model.
//!
//! The algorithm, verbatim from §3.2:
//!
//! ```text
//! 1:  Sample {X₁ⁱ} from q₁(x₁ | y₁)
//! 2:  Compute weights w₁(X₁ⁱ) = p₁(X₁ⁱ)·p(y₁|X₁ⁱ) / q₁(X₁ⁱ|y₁)
//! 3:  Compute normalized weights {W₁ⁱ}
//! 4:  Resample {(W₁ⁱ, X₁ⁱ)} to obtain {(1/N, X̄₁ⁱ)}
//! 5:  for n ≥ 2 do
//! 6:    Sample {Xₙⁱ} from qₙ(xₙ | yₙ, X̄ₙ₋₁ⁱ)
//! 7-9:  αₙⁱ = p(yₙ|Xₙⁱ)·p(Xₙⁱ|X̄ₙ₋₁ⁱ) / qₙ(Xₙⁱ|yₙ, X̄ₙ₋₁ⁱ)
//! 10:   Normalize Wₙⁱ
//! 11:   Resample to {(1/N, X̄ₙⁱ)}
//! ```
//!
//! Weight arithmetic is done in log space. The [`Proposal`] abstraction
//! covers both proposals of the wildfire papers: for the bootstrap choice
//! `qₙ = pₙ(xₙ|xₙ₋₁)` "the formulas for the weights reduce to an
//! evaluation of the observation function", and the sensor-aware proposal
//! of \[57\] supplies its own KDE-estimated weight correction.

use crate::resample::{effective_sample_size, systematic_resample};
use crate::AssimError;
use mde_numeric::checkpoint::{CampaignState, CheckpointError, Fingerprint};
use mde_numeric::resilience::{
    catch_panic, retry_seed, supervise_replicate, AttemptFailure, FaultKind, ReplicateOutcome,
    RunOptions, RunReport, StopCause,
};
use mde_numeric::rng::{Rng, StreamFactory};
use std::path::Path;

/// Campaign tag written into every particle-filter checkpoint.
const CAMPAIGN_PF: &str = "assim.particle-filter";

/// A hidden Markov model: prior, transition kernel, and observation
/// likelihood.
pub trait StateSpaceModel {
    /// Hidden-state type.
    type State: Clone;
    /// Observation type.
    type Obs;

    /// Draw from the initial distribution `p₁(x₁)`.
    fn sample_initial(&self, rng: &mut Rng) -> Self::State;

    /// Draw from the transition kernel `pₙ(xₙ | xₙ₋₁)`.
    fn sample_transition(&self, prev: &Self::State, rng: &mut Rng) -> Self::State;

    /// Log observation likelihood `ln pₙ(yₙ | xₙ)`.
    fn ln_likelihood(&self, state: &Self::State, obs: &Self::Obs) -> f64;
}

/// A proposal distribution `qₙ(xₙ | yₙ, xₙ₋₁)` with its importance-weight
/// correction.
pub trait Proposal<M: StateSpaceModel> {
    /// Draw a proposed state. `prev` is `None` at the first step
    /// (`q₁(x₁|y₁)`).
    fn sample(&self, model: &M, prev: Option<&M::State>, obs: &M::Obs, rng: &mut Rng) -> M::State;

    /// Log unnormalized weight
    /// `ln [ p(y|x)·p(x|prev) / q(x|prev, y) ]`.
    fn ln_weight(
        &self,
        model: &M,
        prev: Option<&M::State>,
        state: &M::State,
        obs: &M::Obs,
        rng: &mut Rng,
    ) -> f64;
}

/// The bootstrap proposal `qₙ = pₙ(xₙ|xₙ₋₁)`: weights collapse to the
/// observation likelihood (the original wildfire formulation \[56\]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BootstrapProposal;

impl<M: StateSpaceModel> Proposal<M> for BootstrapProposal {
    fn sample(&self, model: &M, prev: Option<&M::State>, _obs: &M::Obs, rng: &mut Rng) -> M::State {
        match prev {
            None => model.sample_initial(rng),
            Some(p) => model.sample_transition(p, rng),
        }
    }

    fn ln_weight(
        &self,
        model: &M,
        _prev: Option<&M::State>,
        state: &M::State,
        obs: &M::Obs,
        _rng: &mut Rng,
    ) -> f64 {
        model.ln_likelihood(state, obs)
    }
}

/// One filtering step's output.
#[derive(Debug, Clone)]
pub struct FilterStep<S> {
    /// Particles after resampling (equally weighted).
    pub particles: Vec<S>,
    /// Effective sample size *before* resampling — the degeneracy
    /// diagnostic.
    pub ess: f64,
    /// Log-evidence increment `ln p̂(yₙ | y₁:ₙ₋₁)`.
    pub ln_evidence_increment: f64,
}

impl<S> FilterStep<S> {
    /// Posterior-mean estimate of a state statistic.
    pub fn estimate(&self, g: impl Fn(&S) -> f64) -> f64 {
        self.particles.iter().map(&g).sum::<f64>() / self.particles.len() as f64
    }
}

/// The particle filter driver.
#[derive(Debug, Clone, Copy)]
pub struct ParticleFilter {
    /// Number of particles `N`.
    pub n_particles: usize,
    /// Master seed.
    pub seed: u64,
}

impl ParticleFilter {
    /// Create a filter.
    pub fn new(n_particles: usize, seed: u64) -> Self {
        assert!(n_particles >= 2, "need at least 2 particles");
        ParticleFilter { n_particles, seed }
    }

    /// Run Algorithm 2 over an observation sequence, producing one
    /// [`FilterStep`] per observation.
    pub fn run<M, Q>(
        &self,
        model: &M,
        proposal: &Q,
        observations: &[M::Obs],
    ) -> Vec<FilterStep<M::State>>
    where
        M: StateSpaceModel,
        Q: Proposal<M>,
    {
        let factory = StreamFactory::new(self.seed);
        let mut steps = Vec::with_capacity(observations.len());
        let mut prev: Option<Vec<M::State>> = None;

        for (t, obs) in observations.iter().enumerate() {
            let step_factory = factory.child(t as u64);
            let mut rng = step_factory.stream(0);

            // Steps 1/6: propose; steps 2/7-9: weight (in log space).
            let mut particles = Vec::with_capacity(self.n_particles);
            let mut ln_w = Vec::with_capacity(self.n_particles);
            for i in 0..self.n_particles {
                let parent = prev.as_ref().map(|p| &p[i]);
                let x = proposal.sample(model, parent, obs, &mut rng);
                let lw = proposal.ln_weight(model, parent, &x, obs, &mut rng);
                particles.push(x);
                ln_w.push(lw);
            }

            // Step 3/10: normalize with a max shift.
            let max = ln_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let (weights, ln_evidence_increment) = if max.is_finite() {
                let shifted: Vec<f64> = ln_w.iter().map(|lw| (lw - max).exp()).collect();
                let total: f64 = shifted.iter().sum();
                (
                    shifted.iter().map(|w| w / total).collect::<Vec<f64>>(),
                    max + (total / self.n_particles as f64).ln(),
                )
            } else {
                // All particles impossible under the observation: fall back
                // to uniform weights (total filter failure is surfaced via
                // -inf evidence).
                (
                    vec![1.0 / self.n_particles as f64; self.n_particles],
                    f64::NEG_INFINITY,
                )
            };
            let ess = effective_sample_size(&weights);

            // Step 4/11: resample to equal weights. The weights were just
            // normalized over a non-empty particle set, so the degenerate
            // cases the resampler reports cannot occur here.
            let mut rng_rs = step_factory.stream(1);
            let idx = systematic_resample(&weights, self.n_particles, &mut rng_rs)
                .expect("normalized weights are resampleable");
            let resampled: Vec<M::State> = idx.into_iter().map(|i| particles[i].clone()).collect();

            steps.push(FilterStep {
                particles: resampled.clone(),
                ess,
                ln_evidence_increment,
            });
            prev = Some(resampled);
        }
        steps
    }

    /// Run Algorithm 2 under a [`mde_numeric::RunPolicy`], supervising
    /// each observation step.
    ///
    /// The replicate unit is the filtering step: propose, weight,
    /// resample for one observation, executed inside `catch_unwind`.
    /// Failures — a panicking model or proposal, total weight collapse
    /// (every particle impossible under the observation, which the
    /// unsupervised [`ParticleFilter::run`] papers over with a uniform
    /// fallback), or a non-finite evidence increment — are handled per
    /// the policy:
    ///
    /// * `FailFast` aborts with a typed [`AssimError`];
    /// * `Retry` re-runs the step on a fresh deterministic sub-seed
    ///   derived from `(seed, step, attempt)`;
    /// * `BestEffort` *degrades gracefully*: the failed step's posterior
    ///   is the previous step's particles carried forward unchanged (a
    ///   prior draw at `t = 0`), flagged with `ess = 0.0` and a NaN
    ///   evidence increment so the degradation is visible, and recorded
    ///   in the returned [`RunReport`].
    ///
    /// One [`FilterStep`] is returned per observation under every
    /// policy, so downstream indexing is unaffected by drops.
    pub fn run_supervised<M, Q>(
        &self,
        model: &M,
        proposal: &Q,
        observations: &[M::Obs],
        opts: &RunOptions,
    ) -> crate::Result<(Vec<FilterStep<M::State>>, RunReport)>
    where
        M: StateSpaceModel,
        Q: Proposal<M>,
    {
        let factory = StreamFactory::new(self.seed);
        let mut steps = Vec::with_capacity(observations.len());
        let mut report = RunReport::new();
        let mut prev: Option<Vec<M::State>> = None;

        for (t, obs) in observations.iter().enumerate() {
            let outcome = self.supervised_step(
                model,
                proposal,
                obs,
                t as u64,
                prev.as_deref(),
                &factory,
                opts,
            );
            report.absorb(&outcome);
            match outcome {
                ReplicateOutcome::Success { value, .. } => {
                    report.metrics.observe("pf.ess", value.ess);
                    report.metrics.inc("pf.resamples");
                    prev = Some(value.particles.clone());
                    steps.push(value);
                }
                ReplicateOutcome::Dropped { .. } => {
                    let step = self.degraded_step(model, t as u64, prev.as_deref(), &factory);
                    report.metrics.observe("pf.ess", step.ess);
                    prev = Some(step.particles.clone());
                    steps.push(step);
                }
                ReplicateOutcome::Abort { error, failures } => {
                    return Err(abort_error(error, &failures));
                }
            }
        }
        report.normalize();
        let required = opts.policy.required_successes(observations.len());
        if report.succeeded < required {
            return Err(AssimError::TooManyFailures {
                succeeded: report.succeeded,
                attempted: report.attempted,
                required,
            });
        }
        Ok((steps, report))
    }

    /// Supervise one observation step: the attempt loop of
    /// [`ParticleFilter::run_supervised`], shared with the durable
    /// campaign path so both execute bit-identical filtering.
    // One argument per supervised resource (model, proposal, stream
    // factory, run options, ...); bundling them into a struct would be
    // churn for a private call site shared by exactly two paths.
    #[allow(clippy::too_many_arguments)]
    fn supervised_step<M, Q>(
        &self,
        model: &M,
        proposal: &Q,
        obs: &M::Obs,
        t: u64,
        prev: Option<&[M::State]>,
        factory: &StreamFactory,
        opts: &RunOptions,
    ) -> ReplicateOutcome<FilterStep<M::State>, AssimError>
    where
        M: StateSpaceModel,
        Q: Proposal<M>,
    {
        supervise_replicate(t, &opts.policy, |a| {
            // Attempt 0 keeps the legacy stream layout; reseeding
            // retries never replay the failing stream.
            let step_factory = if a == 0 || !opts.policy.reseeds() {
                factory.child(t)
            } else {
                StreamFactory::new(retry_seed(self.seed, t, a))
            };
            let injected = opts.fault(t, a);
            if injected == Some(FaultKind::Error) {
                return Err(AttemptFailure::from_error(AssimError::Numeric(
                    mde_numeric::NumericError::NoConvergence {
                        context: "injected fault",
                        iterations: 0,
                    },
                )));
            }
            let run = catch_panic(|| -> crate::Result<FilterStep<M::State>> {
                if injected == Some(FaultKind::Panic) {
                    panic!("injected fault: panic in filter step {t} attempt {a}");
                }
                let mut rng = step_factory.stream(0);
                let mut particles = Vec::with_capacity(self.n_particles);
                let mut ln_w = Vec::with_capacity(self.n_particles);
                for i in 0..self.n_particles {
                    let parent = prev.map(|p| &p[i]);
                    let x = proposal.sample(model, parent, obs, &mut rng);
                    let lw = proposal.ln_weight(model, parent, &x, obs, &mut rng);
                    particles.push(x);
                    ln_w.push(lw);
                }
                let max = ln_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if !max.is_finite() {
                    return Err(AssimError::StepFailed {
                        step: t,
                        attempt: a,
                        message: "all particle weights collapsed to zero".into(),
                    });
                }
                let shifted: Vec<f64> = ln_w.iter().map(|lw| (lw - max).exp()).collect();
                let total: f64 = shifted.iter().sum();
                let weights: Vec<f64> = shifted.iter().map(|w| w / total).collect();
                let ln_evidence_increment = if injected == Some(FaultKind::Nan) {
                    f64::NAN
                } else {
                    max + (total / self.n_particles as f64).ln()
                };
                let ess = effective_sample_size(&weights);
                let mut rng_rs = step_factory.stream(1);
                let idx = systematic_resample(&weights, self.n_particles, &mut rng_rs)?;
                Ok(FilterStep {
                    particles: idx.into_iter().map(|i| particles[i].clone()).collect(),
                    ess,
                    ln_evidence_increment,
                })
            });
            match run {
                Err(panic_msg) => Err(AttemptFailure::from_panic(panic_msg)),
                Ok(Err(e)) => Err(AttemptFailure::from_error(e)),
                Ok(Ok(s)) if !s.ln_evidence_increment.is_finite() => {
                    Err(AttemptFailure::non_finite(s.ln_evidence_increment))
                }
                Ok(Ok(s)) => Ok(s),
            }
        })
    }

    /// The graceful-degradation posterior for a dropped step: the
    /// previous step's particles carried forward unchanged (a prior draw
    /// at `t = 0` on a stream untouched by the failed attempts — streams
    /// 0/1 are propose/resample), flagged with `ess = 0` and a NaN
    /// evidence increment.
    fn degraded_step<M>(
        &self,
        model: &M,
        t: u64,
        prev: Option<&[M::State]>,
        factory: &StreamFactory,
    ) -> FilterStep<M::State>
    where
        M: StateSpaceModel,
    {
        let particles: Vec<M::State> = match prev {
            Some(p) => p.to_vec(),
            None => {
                let mut rng = factory.child(t).stream(2);
                (0..self.n_particles)
                    .map(|_| model.sample_initial(&mut rng))
                    .collect()
            }
        };
        FilterStep {
            particles,
            ess: 0.0,
            ln_evidence_increment: f64::NAN,
        }
    }

    /// Run the supervised filter as a **durable campaign**: one checkpoint
    /// boundary per observation step, with deadline/cancel/preempt checks
    /// before each step and (optionally) a crash-consistent
    /// [`CampaignState`] written per step.
    ///
    /// The filter is inherently sequential — each step conditions on the
    /// previous posterior — so the checkpoint ledger carries the full
    /// particle set of every completed step (via the [`ParticleState`]
    /// codec bound) and a resumed run replays nothing: estimates, RNG
    /// draw order, and the [`RunReport`] ledger are bit-identical to an
    /// uninterrupted run. Step supervision (retry, best-effort
    /// degradation) is exactly that of
    /// [`ParticleFilter::run_supervised`].
    pub fn run_durable<M, Q>(
        &self,
        model: &M,
        proposal: &Q,
        observations: &[M::Obs],
        opts: &RunOptions,
    ) -> crate::Result<PfRun<M::State>>
    where
        M: StateSpaceModel,
        M::State: ParticleState,
        Q: Proposal<M>,
    {
        let state = CampaignState::new(
            CAMPAIGN_PF,
            self.fingerprint::<M>(observations.len()),
            self.seed,
            observations.len() as u64,
        );
        self.campaign(model, proposal, observations, opts, state)
    }

    /// Resume a durable filter run from an in-memory [`CampaignState`]
    /// (as returned in [`PfRun::checkpoint`]). Refuses — with a typed
    /// [`AssimError::Checkpoint`] — states whose campaign tag or
    /// fingerprint (particle count, seed, observation count, state
    /// dimension) does not match.
    pub fn resume_durable<M, Q>(
        &self,
        model: &M,
        proposal: &Q,
        observations: &[M::Obs],
        opts: &RunOptions,
        state: CampaignState,
    ) -> crate::Result<PfRun<M::State>>
    where
        M: StateSpaceModel,
        M::State: ParticleState,
        Q: Proposal<M>,
    {
        state.validate(CAMPAIGN_PF, self.fingerprint::<M>(observations.len()))?;
        self.campaign(model, proposal, observations, opts, state)
    }

    /// Resume a durable filter run from a checkpoint file.
    pub fn resume_durable_from<M, Q>(
        &self,
        model: &M,
        proposal: &Q,
        observations: &[M::Obs],
        opts: &RunOptions,
        path: &Path,
    ) -> crate::Result<PfRun<M::State>>
    where
        M: StateSpaceModel,
        M::State: ParticleState,
        Q: Proposal<M>,
    {
        let state = CampaignState::load(path)?;
        self.resume_durable(model, proposal, observations, opts, state)
    }

    /// Campaign identity: tag, particle count, seed, observation count,
    /// and state dimension. (Observation *values* are not hashed — the
    /// caller owns keeping the observation sequence stable across
    /// resumption, as with any externally stored input.)
    fn fingerprint<M>(&self, n_obs: usize) -> u64
    where
        M: StateSpaceModel,
        M::State: ParticleState,
    {
        Fingerprint::new(CAMPAIGN_PF)
            .push_u64(self.n_particles as u64)
            .push_u64(self.seed)
            .push_u64(n_obs as u64)
            .push_u64(M::State::DIM as u64)
            .finish()
    }

    /// The durable campaign loop over observation steps.
    fn campaign<M, Q>(
        &self,
        model: &M,
        proposal: &Q,
        observations: &[M::Obs],
        opts: &RunOptions,
        mut state: CampaignState,
    ) -> crate::Result<PfRun<M::State>>
    where
        M: StateSpaceModel,
        M::State: ParticleState,
        Q: Proposal<M>,
    {
        let factory = StreamFactory::new(self.seed);
        // Reconstruct completed steps (and the running posterior) from
        // the ledger; a fresh state reconstructs nothing.
        let mut steps: Vec<FilterStep<M::State>> = Vec::with_capacity(observations.len());
        for (t, payload) in &state.completed {
            if *t != steps.len() as u64 {
                return Err(AssimError::Checkpoint(CheckpointError::Corrupt {
                    reason: format!("ledger entry {t} out of order at position {}", steps.len()),
                }));
            }
            steps.push(decode_step::<M::State>(payload, self.n_particles)?);
        }
        if steps.len() as u64 != state.cursor {
            return Err(AssimError::Checkpoint(CheckpointError::Corrupt {
                reason: format!(
                    "cursor {} disagrees with {} ledger entries",
                    state.cursor,
                    steps.len()
                ),
            }));
        }
        let mut prev: Option<Vec<M::State>> = steps.last().map(|s| s.particles.clone());
        let mut stopped = None;

        for t in state.cursor..observations.len() as u64 {
            if let Some(cause) = opts.stop_cause(t) {
                stopped = Some(cause);
                break;
            }
            let obs = &observations[t as usize];
            let outcome =
                self.supervised_step(model, proposal, obs, t, prev.as_deref(), &factory, opts);
            state.report.absorb(&outcome);
            let step = match outcome {
                ReplicateOutcome::Success { value, .. } => {
                    state.report.metrics.inc("pf.resamples");
                    value
                }
                ReplicateOutcome::Dropped { .. } => {
                    self.degraded_step(model, t, prev.as_deref(), &factory)
                }
                ReplicateOutcome::Abort { error, failures } => {
                    return Err(abort_error(error, &failures));
                }
            };
            state.report.metrics.observe("pf.ess", step.ess);
            prev = Some(step.particles.clone());
            state.completed.push((t, encode_step(&step)));
            steps.push(step);
            state.cursor = t + 1;
            if let Some(spec) = &opts.checkpoint {
                if spec.due(state.cursor) {
                    let stats = state.save_stats(&spec.path).map_err(AssimError::from)?;
                    stats.record_into(&mut state.report.metrics);
                }
            }
        }
        state.report.normalize();
        if stopped.is_none() {
            let required = opts.policy.required_successes(observations.len());
            if state.report.succeeded < required {
                return Err(AssimError::TooManyFailures {
                    succeeded: state.report.succeeded,
                    attempted: state.report.attempted,
                    required,
                });
            }
        }
        if let Some(spec) = &opts.checkpoint {
            let stats = state.save_stats(&spec.path).map_err(AssimError::from)?;
            stats.record_into(&mut state.report.metrics);
        }
        Ok(PfRun {
            steps,
            report: state.report.clone(),
            stopped,
            checkpoint: Some(state),
        })
    }
}

/// The error surfaced when a step aborts the run: the step's own typed
/// error when it produced one, otherwise synthesized from the terminal
/// failure record.
fn abort_error(
    error: Option<AssimError>,
    failures: &[mde_numeric::resilience::FailureRecord],
) -> AssimError {
    error.unwrap_or_else(|| match failures.last() {
        Some(f) => AssimError::StepFailed {
            step: f.replicate,
            attempt: f.attempt,
            message: f.message.clone(),
        },
        None => AssimError::weights("run_supervised", "step aborted without a failure record"),
    })
}

/// A durable supervised filter run: the per-observation steps, the
/// failure ledger, and — when the run stopped early — why, plus the final
/// campaign state to resume from.
#[derive(Debug, Clone)]
pub struct PfRun<S> {
    /// One [`FilterStep`] per *completed* observation (all of them for a
    /// run that finished; a prefix for a stopped run).
    pub steps: Vec<FilterStep<S>>,
    /// The failure ledger over the completed steps.
    pub report: RunReport,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopCause>,
    /// The final campaign state; pass to
    /// [`ParticleFilter::resume_durable`] to continue.
    pub checkpoint: Option<CampaignState>,
}

/// Fixed-dimension encoding of a particle state into checkpoint floats —
/// the bound [`ParticleFilter::run_durable`] needs to persist posteriors.
/// Implemented for `f64` (scalar states) and `[f64; N]` (fixed vectors);
/// user state types implement it in one obvious way.
pub trait ParticleState: Clone {
    /// Floats per particle.
    const DIM: usize;

    /// Append exactly [`ParticleState::DIM`] floats.
    fn encode(&self, out: &mut Vec<f64>);

    /// Rebuild from exactly [`ParticleState::DIM`] floats.
    fn decode(floats: &[f64]) -> Self;
}

impl ParticleState for f64 {
    const DIM: usize = 1;

    fn encode(&self, out: &mut Vec<f64>) {
        out.push(*self);
    }

    fn decode(floats: &[f64]) -> Self {
        floats[0]
    }
}

impl<const N: usize> ParticleState for [f64; N] {
    const DIM: usize = N;

    fn encode(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self);
    }

    fn decode(floats: &[f64]) -> Self {
        let mut v = [0.0; N];
        v.copy_from_slice(&floats[..N]);
        v
    }
}

/// Ledger payload of one completed step: `[ess, ln_evidence_increment,
/// particle₀…, particle₁…, …]`.
fn encode_step<S: ParticleState>(step: &FilterStep<S>) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 + step.particles.len() * S::DIM);
    out.push(step.ess);
    out.push(step.ln_evidence_increment);
    for p in &step.particles {
        p.encode(&mut out);
    }
    out
}

/// Decode a ledger payload, surfacing shape mismatches as typed
/// checkpoint corruption.
fn decode_step<S: ParticleState>(
    payload: &[f64],
    n_particles: usize,
) -> crate::Result<FilterStep<S>> {
    let expected = 2 + n_particles * S::DIM;
    if payload.len() != expected {
        return Err(AssimError::Checkpoint(CheckpointError::Corrupt {
            reason: format!(
                "step payload has {} floats, expected {expected}",
                payload.len()
            ),
        }));
    }
    let particles = payload[2..]
        .chunks_exact(S::DIM)
        .map(S::decode)
        .collect::<Vec<S>>();
    Ok(FilterStep {
        particles,
        ess: payload[0],
        ln_evidence_increment: payload[1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::dist::{Continuous, Normal};
    use mde_numeric::rng::rng_from_seed;

    /// Linear-Gaussian model: x ~ N(a·x', q), y ~ N(x, r) — the Kalman
    /// filter gives the exact posterior to compare against.
    struct LinGauss {
        a: f64,
        q: f64,
        r: f64,
        x0_mean: f64,
        x0_std: f64,
    }

    impl StateSpaceModel for LinGauss {
        type State = f64;
        type Obs = f64;

        fn sample_initial(&self, rng: &mut Rng) -> f64 {
            self.x0_mean + self.x0_std * Normal::sample_standard(rng)
        }

        fn sample_transition(&self, prev: &f64, rng: &mut Rng) -> f64 {
            self.a * prev + self.q * Normal::sample_standard(rng)
        }

        fn ln_likelihood(&self, state: &f64, obs: &f64) -> f64 {
            Normal::new(*state, self.r).unwrap().ln_pdf(*obs)
        }
    }

    fn kalman_means(m: &LinGauss, ys: &[f64]) -> Vec<f64> {
        // Standard scalar Kalman recursion.
        let mut mean = m.x0_mean;
        let mut var = m.x0_std * m.x0_std;
        let mut out = Vec::new();
        for &y in ys {
            // Predict (the first observation updates the prior directly in
            // our PF formulation, so predict from the second step onward).
            if !out.is_empty() {
                mean *= m.a;
                var = m.a * m.a * var + m.q * m.q;
            }
            // Update.
            let k = var / (var + m.r * m.r);
            mean += k * (y - mean);
            var *= 1.0 - k;
            out.push(mean);
        }
        out
    }

    fn simulate(m: &LinGauss, t: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = rng_from_seed(seed);
        let mut xs = vec![m.sample_initial(&mut rng)];
        for _ in 1..t {
            let prev = *xs.last().unwrap();
            xs.push(m.sample_transition(&prev, &mut rng));
        }
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| x + m.r * Normal::sample_standard(&mut rng))
            .collect();
        (xs, ys)
    }

    fn model() -> LinGauss {
        LinGauss {
            a: 0.9,
            q: 0.5,
            r: 0.7,
            x0_mean: 0.0,
            x0_std: 2.0,
        }
    }

    #[test]
    fn tracks_kalman_posterior_mean() {
        let m = model();
        let (_, ys) = simulate(&m, 30, 1);
        let pf = ParticleFilter::new(2000, 2);
        let steps = pf.run(&m, &BootstrapProposal, &ys);
        let kalman = kalman_means(&m, &ys);
        for (t, (step, km)) in steps.iter().zip(&kalman).enumerate() {
            let est = step.estimate(|&x| x);
            assert!((est - km).abs() < 0.15, "t={t}: PF {est} vs Kalman {km}");
        }
    }

    #[test]
    fn filtering_beats_open_loop_prediction() {
        let m = model();
        let (xs, ys) = simulate(&m, 40, 3);
        let pf = ParticleFilter::new(500, 4);
        let steps = pf.run(&m, &BootstrapProposal, &ys);
        // Open loop: propagate particles with NO observations.
        let mut rng = rng_from_seed(5);
        let mut open: Vec<f64> = (0..500).map(|_| m.sample_initial(&mut rng)).collect();
        let mut err_pf = 0.0;
        let mut err_open = 0.0;
        for (t, step) in steps.iter().enumerate() {
            if t > 0 {
                open = open
                    .iter()
                    .map(|x| m.sample_transition(x, &mut rng))
                    .collect();
            }
            let open_mean = open.iter().sum::<f64>() / open.len() as f64;
            err_pf += (step.estimate(|&x| x) - xs[t]).abs();
            err_open += (open_mean - xs[t]).abs();
        }
        assert!(
            err_pf < err_open * 0.6,
            "assimilation gain missing: PF {err_pf} vs open {err_open}"
        );
    }

    #[test]
    fn ess_reported_and_reasonable() {
        let m = model();
        let (_, ys) = simulate(&m, 10, 6);
        let pf = ParticleFilter::new(300, 7);
        let steps = pf.run(&m, &BootstrapProposal, &ys);
        for s in &steps {
            assert!(s.ess >= 1.0 && s.ess <= 300.0);
        }
        // Bootstrap ESS is typically well below N but far above 1.
        let mean_ess = steps.iter().map(|s| s.ess).sum::<f64>() / steps.len() as f64;
        assert!(mean_ess > 30.0, "mean ESS {mean_ess}");
    }

    #[test]
    fn evidence_increments_are_finite_and_scale_with_fit() {
        let m = model();
        let (_, ys) = simulate(&m, 20, 8);
        let pf = ParticleFilter::new(500, 9);
        let good = pf.run(&m, &BootstrapProposal, &ys);
        let ln_ev_good: f64 = good.iter().map(|s| s.ln_evidence_increment).sum();
        assert!(ln_ev_good.is_finite());
        // Shifted observations fit worse: evidence drops.
        let ys_bad: Vec<f64> = ys.iter().map(|y| y + 10.0).collect();
        let bad = pf.run(&m, &BootstrapProposal, &ys_bad);
        let ln_ev_bad: f64 = bad.iter().map(|s| s.ln_evidence_increment).sum();
        assert!(ln_ev_bad < ln_ev_good - 10.0);
    }

    #[test]
    fn reproducible_given_seed() {
        let m = model();
        let (_, ys) = simulate(&m, 10, 10);
        let run = || {
            ParticleFilter::new(100, 11)
                .run(&m, &BootstrapProposal, &ys)
                .iter()
                .map(|s| s.estimate(|&x| x))
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_particle_count() {
        ParticleFilter::new(1, 1);
    }

    #[test]
    fn supervised_fail_fast_matches_legacy_run() {
        let m = model();
        let (_, ys) = simulate(&m, 15, 20);
        let pf = ParticleFilter::new(200, 21);
        let legacy = pf.run(&m, &BootstrapProposal, &ys);
        let (supervised, report) = pf
            .run_supervised(&m, &BootstrapProposal, &ys, &RunOptions::default())
            .unwrap();
        assert_eq!(supervised.len(), legacy.len());
        for (a, b) in legacy.iter().zip(&supervised) {
            assert_eq!(a.particles, b.particles);
            assert_eq!(a.ess, b.ess);
            assert_eq!(a.ln_evidence_increment, b.ln_evidence_increment);
        }
        assert_eq!(report.succeeded, 15);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn supervised_step_retries_on_fresh_seed() {
        use mde_numeric::resilience::{FailureKind, FaultPlan};
        let m = model();
        let (_, ys) = simulate(&m, 12, 22);
        let pf = ParticleFilter::new(150, 23);
        let opts = RunOptions::policy(mde_numeric::RunPolicy::Retry {
            max_attempts: 2,
            reseed: true,
        })
        .with_faults(FaultPlan::new().fail_on(5, 0, FaultKind::Panic));
        let (steps, report) = pf
            .run_supervised(&m, &BootstrapProposal, &ys, &opts)
            .unwrap();
        assert_eq!(steps.len(), 12);
        assert_eq!(report.retried, 1);
        assert_eq!(report.failure_keys(), vec![(5, 0, FailureKind::Panic)]);
        // Step 5 recovered on a different stream; later steps still track.
        let clean = pf.run(&m, &BootstrapProposal, &ys);
        assert_ne!(steps[5].particles, clean[5].particles);
        assert!(steps[5].ln_evidence_increment.is_finite());
    }

    #[test]
    fn best_effort_carries_particles_through_dropped_steps() {
        use mde_numeric::resilience::FaultPlan;
        let m = model();
        let (_, ys) = simulate(&m, 10, 24);
        let pf = ParticleFilter::new(100, 25);
        let policy = mde_numeric::RunPolicy::BestEffort { min_fraction: 0.5 };
        let fault_plan = FaultPlan::new().fail_on(3, 0, FaultKind::Nan);
        let opts = RunOptions::policy(policy).with_faults(fault_plan.clone());
        let (steps, report) = pf
            .run_supervised(&m, &BootstrapProposal, &ys, &opts)
            .unwrap();
        assert_eq!(steps.len(), 10, "one FilterStep per observation");
        assert_eq!(report.dropped, 1);
        assert!(report.ci_widened);
        assert_eq!(
            report.failure_keys(),
            fault_plan.expected_failure_keys(&policy)
        );
        // The dropped step carries step 2's posterior forward, visibly
        // degraded.
        assert_eq!(steps[3].particles, steps[2].particles);
        assert_eq!(steps[3].ess, 0.0);
        assert!(steps[3].ln_evidence_increment.is_nan());
        // Filtering resumes normally afterwards.
        assert!(steps[4].ln_evidence_increment.is_finite());
        // A floor the drop violates turns into a typed error.
        let strict = RunOptions::policy(mde_numeric::RunPolicy::BestEffort { min_fraction: 1.0 })
            .with_faults(fault_plan);
        assert!(matches!(
            pf.run_supervised(&m, &BootstrapProposal, &ys, &strict),
            Err(AssimError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn durable_run_matches_supervised_and_resumes_bit_identically() {
        use mde_numeric::resilience::FaultPlan;
        let m = model();
        let (_, ys) = simulate(&m, 12, 30);
        let pf = ParticleFilter::new(80, 31);
        let (clean_steps, clean_report) = pf
            .run_supervised(&m, &BootstrapProposal, &ys, &RunOptions::default())
            .unwrap();
        let durable = pf
            .run_durable(&m, &BootstrapProposal, &ys, &RunOptions::default())
            .unwrap();
        assert!(durable.stopped.is_none());
        assert_eq!(durable.report, clean_report);
        for (a, b) in clean_steps.iter().zip(&durable.steps) {
            assert_eq!(a.particles, b.particles);
            assert_eq!(a.ess, b.ess);
        }
        // Preempt mid-run, resume, compare.
        let opts = RunOptions::default().with_faults(FaultPlan::new().preempt_at(5));
        let partial = pf.run_durable(&m, &BootstrapProposal, &ys, &opts).unwrap();
        assert_eq!(partial.stopped, Some(StopCause::Preempted));
        assert_eq!(partial.steps.len(), 5);
        let state = partial.checkpoint.unwrap();
        // The checkpoint round-trips through the binary codec losslessly.
        let state = CampaignState::decode(&state.encode()).unwrap();
        let resumed = pf
            .resume_durable(&m, &BootstrapProposal, &ys, &RunOptions::default(), state)
            .unwrap();
        assert!(resumed.stopped.is_none());
        assert_eq!(resumed.steps.len(), 12);
        for (a, b) in clean_steps.iter().zip(&resumed.steps) {
            assert_eq!(a.particles, b.particles);
            assert_eq!(a.ess, b.ess);
            assert_eq!(
                a.ln_evidence_increment.to_bits(),
                b.ln_evidence_increment.to_bits()
            );
        }
        assert_eq!(resumed.report, clean_report);
        // A foreign checkpoint (different particle count) is refused.
        let other = ParticleFilter::new(81, 31);
        let foreign = other
            .run_durable(&m, &BootstrapProposal, &ys, &opts)
            .unwrap()
            .checkpoint
            .unwrap();
        assert!(matches!(
            pf.resume_durable(&m, &BootstrapProposal, &ys, &RunOptions::default(), foreign),
            Err(AssimError::Checkpoint(CheckpointError::Mismatch { .. }))
        ));
    }
}
