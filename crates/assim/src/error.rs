//! Error type for the data-assimilation crate.

use std::fmt;

/// Errors produced by importance sampling, resampling, and the particle
/// filter.
#[derive(Debug, Clone, PartialEq)]
pub enum AssimError {
    /// A weight vector was unusable (empty, negative entries, or all
    /// zero where a positive total is required).
    InvalidWeights {
        /// Description of the operation.
        context: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A supervised filtering step failed (panic caught by the worker,
    /// weight collapse, or a non-finite evidence increment) and the run
    /// policy had no recovery left.
    StepFailed {
        /// Zero-based observation-step index.
        step: u64,
        /// Zero-based attempt on which the terminal failure occurred.
        attempt: u32,
        /// Human-readable cause.
        message: String,
    },
    /// A best-effort filter run dropped so many steps that it fell below
    /// the policy's minimum success fraction.
    TooManyFailures {
        /// Steps that produced a filtered posterior.
        succeeded: usize,
        /// Steps attempted.
        attempted: usize,
        /// Minimum successes the policy required.
        required: usize,
    },
    /// An error from the numeric substrate.
    Numeric(mde_numeric::NumericError),
    /// Durable-campaign checkpoint persistence or validation failed.
    Checkpoint(mde_numeric::CheckpointError),
}

impl AssimError {
    /// Shorthand for [`AssimError::InvalidWeights`].
    pub fn weights(context: &'static str, reason: impl Into<String>) -> Self {
        AssimError::InvalidWeights {
            context,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for AssimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssimError::InvalidWeights { context, reason } => {
                write!(f, "invalid weights in {context}: {reason}")
            }
            AssimError::StepFailed {
                step,
                attempt,
                message,
            } => write!(
                f,
                "filter step {step} failed on attempt {attempt}: {message}"
            ),
            AssimError::TooManyFailures {
                succeeded,
                attempted,
                required,
            } => write!(
                f,
                "best-effort filter degraded below its floor: {succeeded}/{attempted} steps \
                 succeeded, policy required {required}"
            ),
            AssimError::Numeric(e) => write!(f, "numeric error: {e}"),
            AssimError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AssimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AssimError::Numeric(e) => Some(e),
            AssimError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mde_numeric::NumericError> for AssimError {
    fn from(e: mde_numeric::NumericError) -> Self {
        AssimError::Numeric(e)
    }
}

impl From<mde_numeric::CheckpointError> for AssimError {
    fn from(e: mde_numeric::CheckpointError) -> Self {
        AssimError::Checkpoint(e)
    }
}

impl mde_numeric::ErrorClass for AssimError {
    /// Step failures are draw-dependent and retryable; weight problems
    /// handed in by the caller and an exhausted best-effort floor are
    /// fatal; numeric errors delegate to their own classification.
    fn severity(&self) -> mde_numeric::Severity {
        match self {
            AssimError::StepFailed { .. } => mde_numeric::Severity::Retryable,
            AssimError::Numeric(e) => e.severity(),
            AssimError::Checkpoint(e) => e.severity(),
            AssimError::InvalidWeights { .. } | AssimError::TooManyFailures { .. } => {
                mde_numeric::Severity::Fatal
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::{ErrorClass as _, Severity};

    #[test]
    fn display_and_severity() {
        let e = AssimError::weights("resample", "all weights zero");
        assert!(e.to_string().contains("resample"));
        assert_eq!(e.severity(), Severity::Fatal);

        let e = AssimError::StepFailed {
            step: 4,
            attempt: 1,
            message: "weight collapse".into(),
        };
        assert!(e.to_string().contains("step 4"));
        assert_eq!(e.severity(), Severity::Retryable);

        let e = AssimError::TooManyFailures {
            succeeded: 1,
            attempted: 5,
            required: 4,
        };
        assert!(e.to_string().contains("1/5"));
        assert_eq!(e.severity(), Severity::Fatal);

        let e: AssimError = mde_numeric::NumericError::SingularMatrix { context: "c" }.into();
        assert_eq!(e.severity(), Severity::Retryable);

        let e: AssimError = mde_numeric::CheckpointError::Corrupt {
            reason: "truncated".into(),
        }
        .into();
        assert_eq!(e.severity(), Severity::Fatal);
        assert!(e.to_string().contains("truncated"));
    }
}
