//! Combining real and simulated data — §3.2 of Haas, *Model-Data
//! Ecosystems* (PODS 2014).
//!
//! The paper's worked example is wildfire tracking: "domain experts have
//! developed simulation models that capture the probabilistic mechanism by
//! which a fire spreads over terrain. During an actual fire, real-world
//! temperature data … is available as a stream of time-varying readings
//! from a set of sensors. Particle filtering can be used to combine sensor
//! readings with simulated data to yield more accurate estimates of the
//! fire status than could be obtained from either data source alone."
//!
//! | module | paper concept |
//! |---|---|
//! | [`is`] | importance sampling with unnormalized weights, `Ẑ` |
//! | [`resample`] | multinomial/systematic resampling, ESS, weight collapse |
//! | [`pf`] | the particle filter (the paper's Algorithm 2) over a generic state-space model |
//! | [`wildfire`] | the DEVS-FIRE-style cellular fire model + Gaussian sensor grid |
//! | [`proposal`] | bootstrap (prior) proposal \[56\] and the sensor-aware proposal with KDE-estimated weights \[57\] |
//!
//! # Example: track a fire from noisy sensors
//!
//! ```
//! use mde_assim::pf::{BootstrapProposal, ParticleFilter};
//! use mde_assim::wildfire::default_scenario;
//! use mde_numeric::rng::rng_from_seed;
//!
//! let model = default_scenario();
//! let mut rng = rng_from_seed(7);
//! let (truth, sensor_stream) = model.simulate_truth(8, &mut rng);
//! let steps = ParticleFilter::new(100, 1).run(&model, &BootstrapProposal, &sensor_stream);
//! // The filtered burning-cell count tracks the (hidden) truth.
//! let est = steps[7].estimate(|s| s.burning_count() as f64);
//! let tru = truth[7].burning_count() as f64;
//! assert!((est - tru).abs() < tru.max(4.0));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod is;
pub mod pf;
pub mod proposal;
pub mod resample;
pub mod sched;
pub mod sis;
pub mod wildfire;

pub use error::AssimError;
pub use pf::{ParticleFilter, ParticleState, PfRun, Proposal, StateSpaceModel};
pub use sched::PfCampaign;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AssimError>;
