//! Importance sampling.
//!
//! §3.2: "to sample from a complicated distribution, first sample from a
//! tractable distribution and then 'correct' the sampled value via a
//! multiplicative *weight*" — with unnormalized weights
//! `w(x) = γ(x)/q(x)` needing only the unnormalized density `γ`, and the
//! normalizing constant estimated as `Ẑ = (1/N) Σ w(xⁱ)`.

use mde_numeric::dist::Continuous;
use mde_numeric::rng::Rng;

/// The output of an importance-sampling run: particles, normalized
/// weights, and the normalizing-constant estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceSample {
    /// The sampled particles.
    pub particles: Vec<f64>,
    /// Normalized weights `Wⁱ` (sum to 1).
    pub weights: Vec<f64>,
    /// `Ẑ = (1/N) Σ wⁱ`, the estimate of `∫γ`.
    pub z_hat: f64,
}

impl ImportanceSample {
    /// Self-normalized estimate of `E_π[g(X)] = Σ Wⁱ g(xⁱ)`.
    pub fn estimate(&self, g: impl Fn(f64) -> f64) -> f64 {
        self.particles
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * g(x))
            .sum()
    }
}

/// Run importance sampling: draw `n` particles from `proposal` and weight
/// them against the unnormalized log-target `ln γ`.
///
/// Weights are computed in log space with a max-shift so that extreme
/// targets cannot underflow the normalization.
pub fn importance_sample<Q: Continuous>(
    ln_gamma: impl Fn(f64) -> f64,
    proposal: &Q,
    n: usize,
    rng: &mut Rng,
) -> ImportanceSample {
    assert!(n > 0, "need at least one particle");
    let particles: Vec<f64> = proposal.sample_n(rng, n);
    let ln_w: Vec<f64> = particles
        .iter()
        .map(|&x| ln_gamma(x) - proposal.ln_pdf(x))
        .collect();
    let max = ln_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let shifted: Vec<f64> = ln_w.iter().map(|lw| (lw - max).exp()).collect();
    let total: f64 = shifted.iter().sum();
    let z_hat = if max.is_finite() {
        max.exp() * total / n as f64
    } else {
        0.0
    };
    let weights = shifted.iter().map(|w| w / total).collect();
    ImportanceSample {
        particles,
        weights,
        z_hat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::dist::Normal;
    use mde_numeric::rng::rng_from_seed;

    #[test]
    fn recovers_mean_of_shifted_target() {
        // Target: N(2, 1) unnormalized; proposal: N(0, 2).
        let target = Normal::new(2.0, 1.0).unwrap();
        let proposal = Normal::new(0.0, 2.0).unwrap();
        let mut rng = rng_from_seed(1);
        let s = importance_sample(|x| target.ln_pdf(x), &proposal, 50_000, &mut rng);
        let mean = s.estimate(|x| x);
        assert!((mean - 2.0).abs() < 0.05, "IS mean {mean}");
        // γ here is a normalized density, so Ẑ ≈ 1.
        assert!((s.z_hat - 1.0).abs() < 0.05, "Ẑ = {}", s.z_hat);
    }

    #[test]
    fn estimates_normalizing_constant() {
        // γ(x) = 3·N(1, 0.5)(x): Z = 3.
        let target = Normal::new(1.0, 0.5).unwrap();
        let proposal = Normal::new(0.0, 2.0).unwrap();
        let mut rng = rng_from_seed(2);
        let s = importance_sample(
            |x| (3.0f64).ln() + target.ln_pdf(x),
            &proposal,
            50_000,
            &mut rng,
        );
        assert!((s.z_hat - 3.0).abs() < 0.15, "Ẑ = {}", s.z_hat);
    }

    #[test]
    fn weights_are_normalized() {
        let proposal = Normal::standard();
        let mut rng = rng_from_seed(3);
        let s = importance_sample(|x| -x * x, &proposal, 1000, &mut rng);
        let total: f64 = s.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(s.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn extreme_log_targets_do_not_underflow() {
        // ln γ shifted down by 10_000: naive exp would underflow to all-zero
        // weights; the max-shift must keep estimates finite.
        let target = Normal::new(0.5, 1.0).unwrap();
        let proposal = Normal::standard();
        let mut rng = rng_from_seed(4);
        let s = importance_sample(|x| target.ln_pdf(x) - 10_000.0, &proposal, 10_000, &mut rng);
        let mean = s.estimate(|x| x);
        assert!((mean - 0.5).abs() < 0.1, "mean {mean}");
        assert!(s.z_hat >= 0.0); // finite, not NaN
        assert!(!s.z_hat.is_nan());
    }

    #[test]
    fn mismatched_proposal_still_consistent_but_noisier() {
        // Narrow proposal far from the target: estimate is biased-looking
        // at small n but the weights concentrate correctly.
        let target = Normal::new(3.0, 1.0).unwrap();
        let good = Normal::new(3.0, 1.5).unwrap();
        let bad = Normal::new(0.0, 1.0).unwrap();
        let mut rng = rng_from_seed(5);
        let sg = importance_sample(|x| target.ln_pdf(x), &good, 20_000, &mut rng);
        let sb = importance_sample(|x| target.ln_pdf(x), &bad, 20_000, &mut rng);
        let err_good = (sg.estimate(|x| x) - 3.0).abs();
        let err_bad = (sb.estimate(|x| x) - 3.0).abs();
        assert!(err_good < 0.05);
        // The bad proposal is strictly worse (this is the motivation for
        // the sensor-aware proposal in §3.2).
        assert!(err_bad > err_good);
    }
}
