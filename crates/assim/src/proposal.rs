//! Proposal distributions for the wildfire particle filter.
//!
//! §3.2 describes two generations of proposals:
//!
//! * **\[56\] (bootstrap)**: `qₙ = pₙ(xₙ|xₙ₋₁)` — "the formulas for the
//!   weights reduce to an evaluation of the observation function", but
//!   "accuracy degrades when the transition density is far from the
//!   optimal proposal". That proposal is [`crate::pf::BootstrapProposal`].
//!
//! * **\[57\] (sensor-aware)**: "the process starts by first generating a
//!   fire state x from pₙ(xₙ|xₙ₋₁) … Then, based on sensor readings,
//!   another fire state x′ is generated from x by (i) randomly igniting
//!   unburned cells … deemed to have sufficiently high sensor temperatures
//!   and (ii) 'turning off' the fire for cells where sensor temperatures
//!   are deemed sufficiently cool. Then either x or x′ is selected at
//!   random, according to a probability … based on the relative
//!   'confidence' in the sensors and in the simulation model. … To obtain
//!   analytical expressions for [the transition and proposal densities] …
//!   M > 1 additional samples are drawn … and then the density functions
//!   are estimated using a standard kernel density estimator."
//!
//! Following the paper, the KDE uses the kernel `K(x) = e^{−|x|}` (the
//! paper's example kernel). One honest simplification, documented in
//! DESIGN.md: the KDE is applied to a low-dimensional sufficient summary
//! of the fire state (burning-cell count and fire centroid) rather than
//! the full grid — a full-grid KDE is statistically vacuous at any
//! feasible `M`, and \[56\]/\[57\]'s own analysis works through exactly such
//! state summaries.

use crate::pf::{Proposal, StateSpaceModel};
use crate::wildfire::{CellFire, FireModel, FireState, AMBIENT_TEMP, BURNING_TEMP};
use mde_numeric::kde::{Bandwidth, Kernel, KernelDensity};
use mde_numeric::rng::Rng;
use rand::Rng as _;

/// The sensor-aware proposal of Xue & Hu (WSC 2013).
#[derive(Debug, Clone, Copy)]
pub struct SensorAwareProposal {
    /// Sensor reading above which an unburned sensor cell is ignited in
    /// `x′` (e.g. ambient + half the burning signature).
    pub hot_threshold: f64,
    /// Reading below which a burning sensor cell is extinguished in `x′`.
    pub cool_threshold: f64,
    /// Probability of selecting the sensor-adjusted `x′` over the model
    /// draw `x` — the "relative confidence in the sensors and in the
    /// simulation model".
    pub sensor_confidence: f64,
    /// Auxiliary sample count `M` for the KDE density estimates.
    pub kde_samples: usize,
}

impl Default for SensorAwareProposal {
    fn default() -> Self {
        SensorAwareProposal {
            hot_threshold: AMBIENT_TEMP + 0.5 * BURNING_TEMP,
            cool_threshold: AMBIENT_TEMP + 15.0,
            sensor_confidence: 0.5,
            kde_samples: 8,
        }
    }
}

impl SensorAwareProposal {
    /// The sensor-adjusted state `x′`: ignite hot unburned sensor cells,
    /// extinguish cool burning sensor cells.
    fn adjust(&self, model: &FireModel, x: &FireState, obs: &[f64], rng: &mut Rng) -> FireState {
        let mut cells = x.cells.clone();
        let w = model.config().width;
        for (s, &(sx, sy)) in model.sensors().iter().enumerate() {
            let i = sy * w + sx;
            if obs[s] > self.hot_threshold && cells[i] == CellFire::Unburned {
                // "randomly igniting": ignite with probability rising in
                // the excess temperature.
                let excess = (obs[s] - self.hot_threshold) / BURNING_TEMP;
                if rng.gen::<f64>() < (0.5 + excess).min(1.0) {
                    cells[i] = CellFire::Burning {
                        age: 0,
                        intensity: ((obs[s] - AMBIENT_TEMP) / BURNING_TEMP).clamp(0.2, 1.0),
                    };
                }
            } else if obs[s] < self.cool_threshold {
                if let CellFire::Burning { .. } = cells[i] {
                    cells[i] = CellFire::Burned; // "turning off" the fire
                }
            }
        }
        FireState { cells }
    }

    /// Low-dimensional summary for the KDE: burning count plus centroid.
    fn summary(model: &FireModel, s: &FireState) -> [f64; 3] {
        let w = model.config().width;
        let (mut n, mut cx, mut cy) = (0.0, 0.0, 0.0);
        for (i, c) in s.cells.iter().enumerate() {
            if c.is_burning() {
                n += 1.0;
                cx += (i % w) as f64;
                cy += (i / w) as f64;
            }
        }
        if n > 0.0 {
            [n, cx / n, cy / n]
        } else {
            [0.0, -1.0, -1.0]
        }
    }

    /// KDE log-density of `target`'s summary given `M` auxiliary draws,
    /// with the paper's Laplacian kernel, as a product over coordinates.
    fn ln_kde(model: &FireModel, draws: &[FireState], target: &FireState) -> f64 {
        let t = Self::summary(model, target);
        (0..3)
            .map(|k| {
                let coords: Vec<f64> = draws.iter().map(|d| Self::summary(model, d)[k]).collect();
                KernelDensity::new(&coords, Kernel::Laplacian, Bandwidth::Silverman)
                    .expect("non-empty auxiliary sample")
                    .ln_eval(t[k])
            })
            .sum()
    }
}

impl Proposal<FireModel> for SensorAwareProposal {
    fn sample(
        &self,
        model: &FireModel,
        prev: Option<&FireState>,
        obs: &Vec<f64>,
        rng: &mut Rng,
    ) -> FireState {
        let x = match prev {
            None => model.sample_initial(rng),
            Some(p) => model.sample_transition(p, rng),
        };
        let x_prime = self.adjust(model, &x, obs, rng);
        if rng.gen::<f64>() < self.sensor_confidence {
            x_prime
        } else {
            x
        }
    }

    fn ln_weight(
        &self,
        model: &FireModel,
        prev: Option<&FireState>,
        state: &FireState,
        obs: &Vec<f64>,
        rng: &mut Rng,
    ) -> f64 {
        // α = p(y|x) · p̂(x|prev) / q̂(x|prev, y), with the two densities
        // estimated by KDE over M auxiliary draws (Step 8 of Algorithm 2 in
        // the sensor-aware variant).
        let ll = model.ln_likelihood(state, obs);
        let m = self.kde_samples.max(2);
        let transition_draws: Vec<FireState> = (0..m)
            .map(|_| match prev {
                None => model.sample_initial(rng),
                Some(p) => model.sample_transition(p, rng),
            })
            .collect();
        let proposal_draws: Vec<FireState> =
            (0..m).map(|_| self.sample(model, prev, obs, rng)).collect();
        let ln_p = Self::ln_kde(model, &transition_draws, state);
        let ln_q = Self::ln_kde(model, &proposal_draws, state);
        ll + ln_p - ln_q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pf::{BootstrapProposal, ParticleFilter};
    use crate::wildfire::default_scenario;
    use mde_numeric::rng::rng_from_seed;

    #[test]
    fn adjust_ignites_hot_and_extinguishes_cool_sensor_cells() {
        let model = default_scenario();
        let prop = SensorAwareProposal {
            sensor_confidence: 1.0,
            ..SensorAwareProposal::default()
        };
        let w = model.config().width;
        let n_cells = w * model.config().height;
        // Cold state + a very hot reading at sensor 0: ignition expected
        // (probability 0.5 + excess, here ≈ 1).
        let cold = FireState {
            cells: vec![CellFire::Unburned; n_cells],
        };
        let mut obs = vec![AMBIENT_TEMP; model.sensors().len()];
        obs[0] = AMBIENT_TEMP + BURNING_TEMP;
        let mut rng = rng_from_seed(1);
        let adjusted = prop.adjust(&model, &cold, &obs, &mut rng);
        let (sx, sy) = model.sensors()[0];
        assert!(adjusted.cells[sy * w + sx].is_burning());

        // Burning sensor cell + cool reading: extinguished.
        let mut hot = cold.clone();
        hot.cells[sy * w + sx] = CellFire::Burning {
            age: 1,
            intensity: 1.0,
        };
        let cool_obs = vec![AMBIENT_TEMP; model.sensors().len()];
        let adjusted = prop.adjust(&model, &hot, &cool_obs, &mut rng);
        assert_eq!(adjusted.cells[sy * w + sx], CellFire::Burned);
    }

    #[test]
    fn zero_confidence_reduces_to_model_draws() {
        let model = default_scenario();
        let prop = SensorAwareProposal {
            sensor_confidence: 0.0,
            ..SensorAwareProposal::default()
        };
        let mut rng = rng_from_seed(2);
        let obs = vec![AMBIENT_TEMP; model.sensors().len()];
        // With confidence 0 the sample is exactly a prior/transition draw:
        // one burning cell near the ignition point.
        for _ in 0..10 {
            let s = prop.sample(&model, None, &obs, &mut rng);
            assert_eq!(s.burning_count(), 1);
        }
    }

    #[test]
    fn summaries_separate_distinct_fires() {
        let model = default_scenario();
        let n_cells = 32 * 32;
        let cold = FireState {
            cells: vec![CellFire::Unburned; n_cells],
        };
        let mut hot = cold.clone();
        for i in 0..40 {
            hot.cells[i] = CellFire::Burning {
                age: 0,
                intensity: 1.0,
            };
        }
        let sc = SensorAwareProposal::summary(&model, &cold);
        let sh = SensorAwareProposal::summary(&model, &hot);
        assert_eq!(sc[0], 0.0);
        assert_eq!(sh[0], 40.0);
        assert_ne!(sc[1], sh[1]);
    }

    /// The headline §3.2 result, in miniature: with a *misspecified* prior
    /// (the filter believes the fire started far from where it did), the
    /// sensor-aware proposal recovers the burning-cell count better than
    /// the bootstrap proposal.
    #[test]
    fn sensor_aware_beats_bootstrap_under_prior_mismatch() {
        let truth_model = default_scenario(); // ignition (8, 16)
        let mut wrong_cfg = truth_model.config().clone();
        wrong_cfg.ignition = (24, 16); // filter's misbelief
        let filter_model = FireModel::new(wrong_cfg, (5, 5), 8.0);

        let mut err_boot_total = 0.0;
        let mut err_aware_total = 0.0;
        for seed in 0..3 {
            let mut rng = rng_from_seed(50 + seed);
            let (truth, obs) = truth_model.simulate_truth(15, &mut rng);

            let pf = ParticleFilter::new(150, 60 + seed);
            let boot = pf.run(&filter_model, &BootstrapProposal, &obs);
            let aware = pf.run(
                &filter_model,
                &SensorAwareProposal {
                    sensor_confidence: 0.8,
                    ..SensorAwareProposal::default()
                },
                &obs,
            );
            let err = |steps: &[crate::pf::FilterStep<FireState>]| {
                steps
                    .iter()
                    .zip(&truth)
                    .map(|(s, t)| {
                        (s.estimate(|x| x.burning_count() as f64) - t.burning_count() as f64).abs()
                    })
                    .sum::<f64>()
            };
            err_boot_total += err(&boot);
            err_aware_total += err(&aware);
        }
        assert!(
            err_aware_total < err_boot_total,
            "sensor-aware ({err_aware_total}) not better than bootstrap ({err_boot_total})"
        );
    }

    #[test]
    fn weights_are_finite() {
        let model = default_scenario();
        let prop = SensorAwareProposal::default();
        let mut rng = rng_from_seed(3);
        let (_, obs) = model.simulate_truth(5, &mut rng);
        let x = prop.sample(&model, None, &obs[0], &mut rng);
        let lw = prop.ln_weight(&model, None, &x, &obs[0], &mut rng);
        assert!(lw.is_finite(), "ln weight {lw}");
    }
}
