//! Resampling — the fix for weight degeneracy in sequential importance
//! sampling.
//!
//! §3.2: "As n increases the IS estimate involves the product of more and
//! more random weights, which can cause the variance of the estimate to
//! grow exponentially or can cause π̂ₙ to 'collapse', in that one weight
//! will tend to 1 while the rest tend to 0. A solution … is to obtain a
//! new sample of size N at the end of each iteration by resampling …
//! according to their normalized weights."
//!
//! Both the textbook multinomial scheme and the lower-variance systematic
//! scheme are provided, plus the effective-sample-size diagnostic that
//! quantifies collapse.

use crate::AssimError;
use mde_numeric::rng::Rng;
use rand::Rng as _;

/// Validate a weight vector for resampling: non-empty, no negative
/// entries, positive total. Returns the total.
fn check_weights(weights: &[f64], context: &'static str) -> crate::Result<f64> {
    if weights.is_empty() {
        return Err(AssimError::weights(context, "no weights to resample"));
    }
    let mut total = 0.0;
    for &w in weights {
        if w < 0.0 {
            return Err(AssimError::weights(context, format!("negative weight {w}")));
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(AssimError::weights(context, "all weights zero"));
    }
    Ok(total)
}

/// Effective sample size `1 / Σ (Wⁱ)²` of normalized weights: `N` for
/// uniform weights, `1` at full collapse.
pub fn effective_sample_size(weights: &[f64]) -> f64 {
    let s: f64 = weights.iter().map(|w| w * w).sum();
    if s <= 0.0 {
        0.0
    } else {
        1.0 / s
    }
}

/// Multinomial resampling: draw `n` indices i.i.d. proportional to the
/// weights.
///
/// Degenerate weight vectors (empty, negative entries, all zero) are
/// surfaced as [`AssimError::InvalidWeights`] rather than panicking —
/// collapsed weights are an expected runtime condition in §3.2, not a
/// programming error.
pub fn multinomial_resample(weights: &[f64], n: usize, rng: &mut Rng) -> crate::Result<Vec<usize>> {
    let total = check_weights(weights, "multinomial_resample")?;
    // Cumulative distribution + inverse sampling.
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cdf.push(acc);
    }
    Ok((0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            cdf.partition_point(|&c| c < u).min(weights.len() - 1)
        })
        .collect())
}

/// Systematic resampling: a single uniform offset and `n` evenly spaced
/// pointers — unbiased like multinomial but with much lower variance, the
/// standard practical choice for particle filters.
///
/// Degenerate weight vectors are surfaced as
/// [`AssimError::InvalidWeights`] rather than panicking.
pub fn systematic_resample(weights: &[f64], n: usize, rng: &mut Rng) -> crate::Result<Vec<usize>> {
    let total = check_weights(weights, "systematic_resample")?;
    let step = total / n as f64;
    let mut u = rng.gen::<f64>() * step;
    let mut out = Vec::with_capacity(n);
    let mut acc = weights[0];
    let mut i = 0usize;
    for _ in 0..n {
        while u > acc && i + 1 < weights.len() {
            i += 1;
            acc += weights[i];
        }
        out.push(i);
        u += step;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::rng::rng_from_seed;

    #[test]
    fn ess_bounds() {
        let uniform = vec![0.25; 4];
        assert!((effective_sample_size(&uniform) - 4.0).abs() < 1e-12);
        let collapsed = vec![1.0, 0.0, 0.0, 0.0];
        assert!((effective_sample_size(&collapsed) - 1.0).abs() < 1e-12);
        let partial = vec![0.5, 0.5, 0.0, 0.0];
        assert!((effective_sample_size(&partial) - 2.0).abs() < 1e-12);
        assert_eq!(effective_sample_size(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn multinomial_frequencies_match_weights() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let mut rng = rng_from_seed(1);
        let n = 100_000;
        let idx = multinomial_resample(&weights, n, &mut rng).unwrap();
        let mut counts = [0usize; 4];
        for i in idx {
            counts[i] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let p = weights[k];
            let se = (p * (1.0 - p) / n as f64).sqrt();
            assert!(
                ((c as f64 / n as f64) - p).abs() < 5.0 * se,
                "category {k} frequency off"
            );
        }
    }

    #[test]
    fn systematic_frequencies_match_weights_with_low_variance() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let mut rng = rng_from_seed(2);
        let n = 10_000;
        let idx = systematic_resample(&weights, n, &mut rng).unwrap();
        let mut counts = [0usize; 4];
        for i in idx {
            counts[i] += 1;
        }
        // Systematic resampling quantizes counts to within 1 of n·w.
        for (k, &c) in counts.iter().enumerate() {
            let expected = weights[k] * n as f64;
            assert!(
                (c as f64 - expected).abs() <= 1.0,
                "category {k}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_weight_particles_never_selected() {
        let weights = [0.0, 1.0, 0.0];
        let mut rng = rng_from_seed(3);
        for i in multinomial_resample(&weights, 1000, &mut rng).unwrap() {
            assert_eq!(i, 1);
        }
        for i in systematic_resample(&weights, 1000, &mut rng).unwrap() {
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn unnormalized_weights_accepted() {
        // Both schemes normalize internally.
        let weights = [2.0, 6.0];
        let mut rng = rng_from_seed(4);
        let idx = systematic_resample(&weights, 4000, &mut rng).unwrap();
        let ones = idx.iter().filter(|&&i| i == 1).count();
        assert!((ones as f64 / 4000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    fn degenerate_weights_are_typed_errors() {
        let mut rng = rng_from_seed(5);
        for result in [
            multinomial_resample(&[0.0, 0.0], 10, &mut rng),
            systematic_resample(&[0.0, 0.0], 10, &mut rng),
            multinomial_resample(&[], 10, &mut rng),
            multinomial_resample(&[0.5, -0.5], 10, &mut rng),
        ] {
            match result {
                Err(AssimError::InvalidWeights { .. }) => {}
                other => panic!("expected InvalidWeights, got {other:?}"),
            }
        }
        assert!(multinomial_resample(&[0.0, 0.0], 10, &mut rng)
            .unwrap_err()
            .to_string()
            .contains("all weights zero"));
    }

    #[test]
    fn resampling_restores_ess() {
        // The §3.2 collapse-repair story: degenerate weights, resample,
        // uniform weights again.
        let weights = [0.97, 0.01, 0.01, 0.01];
        assert!(effective_sample_size(&weights) < 1.1);
        let mut rng = rng_from_seed(6);
        let idx = systematic_resample(&weights, 4, &mut rng).unwrap();
        let new_weights = vec![0.25; idx.len()];
        assert_eq!(effective_sample_size(&new_weights), 4.0);
    }
}
