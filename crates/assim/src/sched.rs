//! Scheduler adapter: runs a durable [`ParticleFilter`] campaign as a
//! schedulable [`Campaign`].
//!
//! Each slice continues the filter from the last checkpointed observation
//! step; the scheduler's control block (cancel token + deadline) is
//! threaded into the filter's per-step boundary checks, so preemption and
//! shedding land exactly between observation updates. The campaign's
//! scalar summary is the filter's total log evidence over the completed
//! steps — the model-comparison quantity an overload-aware analyst would
//! track across degraded runs.

use crate::pf::{ParticleFilter, ParticleState, PfRun, Proposal, StateSpaceModel};
use mde_numeric::resilience::{RunOptions, RunPolicy, StopCause};
use mde_numeric::{
    Campaign, CampaignCtl, CampaignError, CampaignOutput, CampaignState, CampaignStep, ErrorClass,
};

/// A durable particle-filter run packaged as a schedulable campaign.
pub struct PfCampaign<M, Q>
where
    M: StateSpaceModel,
    M::State: ParticleState,
    Q: Proposal<M>,
{
    filter: ParticleFilter,
    model: M,
    proposal: Q,
    observations: Vec<M::Obs>,
    opts: RunOptions,
    state: Option<CampaignState>,
}

impl<M, Q> PfCampaign<M, Q>
where
    M: StateSpaceModel,
    M::State: ParticleState,
    Q: Proposal<M>,
{
    /// Package a filter run over an observation sequence as a campaign.
    pub fn new(
        filter: ParticleFilter,
        model: M,
        proposal: Q,
        observations: Vec<M::Obs>,
        opts: RunOptions,
    ) -> Self {
        PfCampaign {
            filter,
            model,
            proposal,
            observations,
            opts,
            state: None,
        }
    }

    fn absorbs_shedding(&self) -> bool {
        matches!(self.opts.policy, RunPolicy::BestEffort { .. })
    }

    fn run_slice(&mut self, ctl: &CampaignCtl) -> crate::Result<PfRun<M::State>> {
        let mut opts = self.opts.clone();
        opts.cancel = Some(ctl.cancel.clone());
        if ctl.deadline.is_some() {
            opts.deadline = ctl.deadline;
        }
        match self.state.take() {
            Some(state) => self.filter.resume_durable(
                &self.model,
                &self.proposal,
                &self.observations,
                &opts,
                state,
            ),
            None => self
                .filter
                .run_durable(&self.model, &self.proposal, &self.observations, &opts),
        }
    }
}

impl<M, Q> Campaign for PfCampaign<M, Q>
where
    M: StateSpaceModel + Send,
    M::State: ParticleState + Send,
    M::Obs: Send,
    Q: Proposal<M> + Send,
{
    fn run(&mut self, ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
        let n_obs = self.observations.len() as u64;
        let run = self.run_slice(ctl).map_err(|e| CampaignError {
            message: e.to_string(),
            severity: e.severity(),
        })?;
        let output = |run: PfRun<M::State>| {
            let evidence: f64 = run
                .steps
                .iter()
                .map(|s| s.ln_evidence_increment)
                .filter(|v| v.is_finite())
                .sum();
            let value = (!run.steps.is_empty()).then_some(evidence);
            CampaignOutput {
                value,
                report: run.report,
            }
        };
        match run.stopped {
            None => Ok(CampaignStep::Done(output(run))),
            Some(StopCause::Shed) if self.absorbs_shedding() => {
                let mut run = run;
                let cursor = run.checkpoint.as_ref().map(|s| s.cursor).unwrap_or(n_obs);
                run.report.record_shed(n_obs.saturating_sub(cursor));
                Ok(CampaignStep::Done(output(run)))
            }
            Some(_) => {
                let resumable = run.checkpoint.is_some();
                self.state = run.checkpoint;
                Ok(CampaignStep::Boundary { resumable })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pf::BootstrapProposal;
    use mde_numeric::dist::Continuous;
    use mde_numeric::resilience::CancelReason;
    use mde_numeric::rng::Rng;

    /// Scalar random-walk model with Gaussian observations.
    struct Walk;

    impl StateSpaceModel for Walk {
        type State = f64;
        type Obs = f64;

        fn sample_initial(&self, rng: &mut Rng) -> f64 {
            mde_numeric::dist::Normal::sample_standard(rng)
        }

        fn sample_transition(&self, prev: &f64, rng: &mut Rng) -> f64 {
            prev + 0.3 * mde_numeric::dist::Normal::sample_standard(rng)
        }

        fn ln_likelihood(&self, state: &f64, obs: &f64) -> f64 {
            mde_numeric::dist::Normal::new(*state, 0.5)
                .unwrap()
                .ln_pdf(*obs)
        }
    }

    fn walk_campaign(policy: RunPolicy) -> PfCampaign<Walk, BootstrapProposal> {
        let obs: Vec<f64> = (0..6).map(|t| (t as f64) * 0.1).collect();
        PfCampaign::new(
            ParticleFilter::new(64, 11),
            Walk,
            BootstrapProposal,
            obs,
            RunOptions::policy(policy),
        )
    }

    #[test]
    fn preempt_then_resume_matches_uninterrupted() {
        let mut base = walk_campaign(RunPolicy::FailFast);
        let baseline = match base.run(&CampaignCtl::new()).expect("baseline") {
            CampaignStep::Done(out) => out,
            other => panic!("expected Done, got {other:?}"),
        };

        let mut c = walk_campaign(RunPolicy::FailFast);
        let ctl = CampaignCtl::new();
        ctl.cancel.cancel_for(CancelReason::Preempt);
        match c.run(&ctl).expect("preempted slice") {
            CampaignStep::Boundary { resumable } => assert!(resumable),
            other => panic!("expected Boundary, got {other:?}"),
        }
        let resumed = match c.run(&CampaignCtl::new()).expect("resumed") {
            CampaignStep::Done(out) => out,
            other => panic!("expected Done, got {other:?}"),
        };
        assert_eq!(resumed.value, baseline.value);
        assert_eq!(resumed.report.succeeded, baseline.report.succeeded);
    }

    #[test]
    fn best_effort_absorbs_shedding() {
        let mut c = walk_campaign(RunPolicy::BestEffort { min_fraction: 0.0 });
        let ctl = CampaignCtl::new();
        ctl.cancel.cancel_for(CancelReason::Shed);
        match c.run(&ctl).expect("shed slice") {
            CampaignStep::Done(out) => {
                assert_eq!(out.report.shed, 6);
                assert!(out.report.ci_widened);
                assert_eq!(out.value, None);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }
}
