//! A cellular wildfire-spread model with a Gaussian sensor grid — the
//! DEVS-FIRE-style substrate of the paper's data-assimilation example.
//!
//! §3.2: "\[the\] modified version of the DEVS-FIRE model simulates the
//! stochastic progression of a wildfire over a gridded representation of
//! terrain, where the current fire state records for each cell whether the
//! cell is unburned, burning, or burned and, if burning, the intensity of
//! the fire. … Based on scientific studies, the authors obtain a Gaussian
//! model of sensor behavior, which leads to a closed-form expression for
//! the observation function p(yₙ | xₙ)."
//!
//! Simulation steps advance `Δt` units "determined by the sensor
//! measurement frequencies and the model's time-scale granularity" — here
//! one step per observation, matching \[56\].

use crate::pf::StateSpaceModel;
use mde_numeric::dist::{Continuous, Normal};
use mde_numeric::rng::Rng;
use rand::Rng as _;

/// Per-cell fire status.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellFire {
    /// Fuel intact.
    Unburned,
    /// On fire; `age` counts steps burning, `intensity` in `(0, 1]`.
    Burning {
        /// Steps this cell has burned.
        age: u8,
        /// Fire intensity.
        intensity: f64,
    },
    /// Fuel exhausted.
    Burned,
}

impl CellFire {
    /// Whether the cell is burning.
    pub fn is_burning(&self) -> bool {
        matches!(self, CellFire::Burning { .. })
    }
}

/// The fire state over the whole grid.
#[derive(Debug, Clone, PartialEq)]
pub struct FireState {
    /// Row-major cells.
    pub cells: Vec<CellFire>,
}

impl FireState {
    /// Number of burning cells.
    pub fn burning_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_burning()).count()
    }

    /// Number of burned-out cells.
    pub fn burned_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, CellFire::Burned))
            .count()
    }

    /// Cells ever touched by fire.
    pub fn footprint(&self) -> usize {
        self.burning_count() + self.burned_count()
    }
}

/// Terrain and dynamics configuration.
#[derive(Debug, Clone)]
pub struct FireModelConfig {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Per-cell fuel density in `[0, 1]` (length `width·height`);
    /// uniform fuel of 1.0 if empty.
    pub fuel: Vec<f64>,
    /// Wind vector; spread toward the wind direction is amplified.
    pub wind: (f64, f64),
    /// Base ignition probability per burning neighbor per step.
    pub spread: f64,
    /// Steps a cell burns before burning out.
    pub burn_steps: u8,
    /// Ignition cell of the prior `p₁` (with ±1 jitter).
    pub ignition: (usize, usize),
}

/// The wildfire state-space model: cellular spread dynamics plus a sensor
/// grid defining the observation function.
#[derive(Debug, Clone)]
pub struct FireModel {
    cfg: FireModelConfig,
    sensors: Vec<(usize, usize)>,
    sensor_noise_std: f64,
}

/// Ambient temperature (°C) read by a sensor over a cold cell.
pub const AMBIENT_TEMP: f64 = 20.0;
/// Temperature contribution of a full-intensity burning cell.
pub const BURNING_TEMP: f64 = 300.0;
/// Residual temperature over a burned-out cell.
pub const BURNED_TEMP: f64 = 60.0;

impl FireModel {
    /// Create a model with a regular `sx × sy` sensor grid.
    pub fn new(cfg: FireModelConfig, sensor_grid: (usize, usize), sensor_noise_std: f64) -> Self {
        assert!(cfg.width >= 2 && cfg.height >= 2, "grid too small");
        assert!(
            cfg.fuel.is_empty() || cfg.fuel.len() == cfg.width * cfg.height,
            "fuel map size mismatch"
        );
        assert!(sensor_noise_std > 0.0, "sensor noise must be positive");
        assert!(cfg.spread > 0.0 && cfg.spread < 1.0, "spread out of range");
        let (sx, sy) = sensor_grid;
        assert!(sx >= 1 && sy >= 1, "need at least one sensor");
        let mut sensors = Vec::with_capacity(sx * sy);
        for j in 0..sy {
            for i in 0..sx {
                let x = (i * 2 + 1) * cfg.width / (2 * sx);
                let y = (j * 2 + 1) * cfg.height / (2 * sy);
                sensors.push((x.min(cfg.width - 1), y.min(cfg.height - 1)));
            }
        }
        FireModel {
            cfg,
            sensors,
            sensor_noise_std,
        }
    }

    /// The sensor locations.
    pub fn sensors(&self) -> &[(usize, usize)] {
        &self.sensors
    }

    /// Grid configuration.
    pub fn config(&self) -> &FireModelConfig {
        &self.cfg
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.cfg.width + x
    }

    fn fuel_at(&self, i: usize) -> f64 {
        if self.cfg.fuel.is_empty() {
            1.0
        } else {
            self.cfg.fuel[i]
        }
    }

    /// Expected (noise-free) temperature at a sensor given the state.
    pub fn expected_temp(&self, state: &FireState, sensor: usize) -> f64 {
        let (x, y) = self.sensors[sensor];
        match state.cells[self.idx(x, y)] {
            CellFire::Unburned => AMBIENT_TEMP,
            CellFire::Burning { intensity, .. } => AMBIENT_TEMP + BURNING_TEMP * intensity,
            CellFire::Burned => BURNED_TEMP,
        }
    }

    /// Draw a (noisy) observation vector from the state — used to
    /// synthesize "real-world" sensor streams from a ground-truth run.
    pub fn observe(&self, state: &FireState, rng: &mut Rng) -> Vec<f64> {
        (0..self.sensors.len())
            .map(|s| {
                self.expected_temp(state, s) + self.sensor_noise_std * Normal::sample_standard(rng)
            })
            .collect()
    }

    /// Simulate a ground-truth trajectory of `steps` states with matching
    /// observations.
    pub fn simulate_truth(&self, steps: usize, rng: &mut Rng) -> (Vec<FireState>, Vec<Vec<f64>>) {
        let mut states = vec![self.sample_initial(rng)];
        for _ in 1..steps {
            let prev = states.last().expect("seeded");
            states.push(self.sample_transition(prev, rng));
        }
        let obs = states.iter().map(|s| self.observe(s, rng)).collect();
        (states, obs)
    }
}

impl StateSpaceModel for FireModel {
    type State = FireState;
    type Obs = Vec<f64>;

    fn sample_initial(&self, rng: &mut Rng) -> FireState {
        let mut cells = vec![CellFire::Unburned; self.cfg.width * self.cfg.height];
        // Ignition with ±1 cell jitter (prior uncertainty about the start).
        let jx = (self.cfg.ignition.0 as i64 + rng.gen_range(-1..=1))
            .clamp(0, self.cfg.width as i64 - 1) as usize;
        let jy = (self.cfg.ignition.1 as i64 + rng.gen_range(-1..=1))
            .clamp(0, self.cfg.height as i64 - 1) as usize;
        cells[self.idx(jx, jy)] = CellFire::Burning {
            age: 0,
            intensity: 1.0,
        };
        FireState { cells }
    }

    fn sample_transition(&self, prev: &FireState, rng: &mut Rng) -> FireState {
        let (w, h) = (self.cfg.width, self.cfg.height);
        let mut next = prev.cells.clone();

        // Age burning cells.
        for c in next.iter_mut() {
            if let CellFire::Burning { age, intensity } = *c {
                *c = if age + 1 >= self.cfg.burn_steps {
                    CellFire::Burned
                } else {
                    CellFire::Burning {
                        age: age + 1,
                        // Intensity decays as fuel is consumed.
                        intensity: (intensity * 0.9).max(0.2),
                    }
                };
            }
        }

        // Ignite unburned neighbors of cells burning in `prev`.
        let wind_norm = (self.cfg.wind.0.powi(2) + self.cfg.wind.1.powi(2)).sqrt();
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let i = self.idx(x as usize, y as usize);
                if prev.cells[i] != CellFire::Unburned {
                    continue;
                }
                let mut p_not = 1.0;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let (nx, ny) = (x + dx, y + dy);
                        if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                            continue;
                        }
                        let ni = self.idx(nx as usize, ny as usize);
                        if let CellFire::Burning { intensity, .. } = prev.cells[ni] {
                            // Spread direction is neighbor -> this cell:
                            // (-dx, -dy). Wind alignment amplifies.
                            let align = if wind_norm > 0.0 {
                                let sl = ((dx * dx + dy * dy) as f64).sqrt();
                                (-(dx as f64) * self.cfg.wind.0 - (dy as f64) * self.cfg.wind.1)
                                    / (sl * wind_norm)
                            } else {
                                0.0
                            };
                            let wind_factor = 1.0 + 0.8 * wind_norm.min(1.0) * align;
                            let p = (self.cfg.spread
                                * intensity
                                * self.fuel_at(i)
                                * wind_factor.max(0.0))
                            .clamp(0.0, 0.999);
                            p_not *= 1.0 - p;
                        }
                    }
                }
                if p_not < 1.0 && rng.gen::<f64>() < 1.0 - p_not {
                    next[i] = CellFire::Burning {
                        age: 0,
                        intensity: 0.7 + 0.3 * rng.gen::<f64>(),
                    };
                }
            }
        }
        FireState { cells: next }
    }

    fn ln_likelihood(&self, state: &FireState, obs: &Vec<f64>) -> f64 {
        debug_assert_eq!(obs.len(), self.sensors.len());
        let noise = Normal::new(0.0, self.sensor_noise_std).expect("validated");
        obs.iter()
            .enumerate()
            .map(|(s, &y)| noise.ln_pdf(y - self.expected_temp(state, s)))
            .sum()
    }
}

/// A convenient default scenario: 32×32 grid, mild easterly wind, 5×5
/// sensor grid — the scale of the paper's experiments.
pub fn default_scenario() -> FireModel {
    FireModel::new(
        FireModelConfig {
            width: 32,
            height: 32,
            fuel: Vec::new(),
            wind: (0.4, 0.1),
            spread: 0.18,
            burn_steps: 4,
            ignition: (8, 16),
        },
        (5, 5),
        8.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mde_numeric::rng::rng_from_seed;

    #[test]
    fn initial_state_has_one_burning_cell_near_ignition() {
        let m = default_scenario();
        let mut rng = rng_from_seed(1);
        for _ in 0..20 {
            let s = m.sample_initial(&mut rng);
            assert_eq!(s.burning_count(), 1);
            let i = s.cells.iter().position(|c| c.is_burning()).unwrap();
            let (x, y) = (i % 32, i / 32);
            assert!((x as i64 - 8).abs() <= 1 && (y as i64 - 16).abs() <= 1);
        }
    }

    #[test]
    fn fire_spreads_then_burns_out_where_it_passed() {
        let m = default_scenario();
        let mut rng = rng_from_seed(2);
        let (states, _) = m.simulate_truth(25, &mut rng);
        let footprints: Vec<usize> = states.iter().map(|s| s.footprint()).collect();
        // Footprint is monotone (fire never unburns).
        for w in footprints.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(footprints.last().unwrap() > &30, "fire failed to spread");
        // Early cells have burned out by the end.
        assert!(states.last().unwrap().burned_count() > 0);
    }

    #[test]
    fn wind_biases_spread_direction() {
        let windy = FireModel::new(
            FireModelConfig {
                width: 40,
                height: 40,
                fuel: Vec::new(),
                wind: (1.0, 0.0), // strong easterly
                spread: 0.2,
                burn_steps: 3,
                ignition: (20, 20),
            },
            (1, 1),
            5.0,
        );
        // Average horizontal centroid drift over several runs.
        let mut drift = 0.0;
        for seed in 0..10 {
            let mut rng = rng_from_seed(100 + seed);
            let (states, _) = windy.simulate_truth(15, &mut rng);
            let centroid_x = |s: &FireState| {
                let mut sum = 0.0;
                let mut n = 0.0;
                for (i, c) in s.cells.iter().enumerate() {
                    if c.is_burning() || matches!(c, CellFire::Burned) {
                        sum += (i % 40) as f64;
                        n += 1.0;
                    }
                }
                sum / f64::max(n, 1.0)
            };
            drift += centroid_x(states.last().unwrap()) - 20.0;
        }
        assert!(drift / 10.0 > 1.0, "wind drift {}", drift / 10.0);
    }

    #[test]
    fn fuel_breaks_stop_fire() {
        // A fuel-free vertical strip at x = 10..12 blocks eastward spread.
        let (w, h) = (24usize, 12usize);
        let mut fuel = vec![1.0; w * h];
        for y in 0..h {
            for x in 10..12 {
                fuel[y * w + x] = 0.0;
            }
        }
        let m = FireModel::new(
            FireModelConfig {
                width: w,
                height: h,
                fuel,
                wind: (0.0, 0.0),
                spread: 0.35,
                burn_steps: 3,
                ignition: (3, 6),
            },
            (1, 1),
            5.0,
        );
        let mut rng = rng_from_seed(3);
        let (states, _) = m.simulate_truth(40, &mut rng);
        let last = states.last().unwrap();
        // Nothing beyond the break ever ignites. (Diagonal ignition cannot
        // jump a 2-wide break.)
        for y in 0..h {
            for x in 12..w {
                assert_eq!(
                    last.cells[y * w + x],
                    CellFire::Unburned,
                    "fire crossed the fuel break at ({x},{y})"
                );
            }
        }
        assert!(last.footprint() > 5, "fire did spread on the fuel side");
    }

    #[test]
    fn sensor_layout_covers_grid() {
        let m = default_scenario();
        assert_eq!(m.sensors().len(), 25);
        for &(x, y) in m.sensors() {
            assert!(x < 32 && y < 32);
        }
        // Sensors are distinct.
        let mut s = m.sensors().to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 25);
    }

    #[test]
    fn likelihood_prefers_the_true_state() {
        let m = default_scenario();
        let mut rng = rng_from_seed(4);
        let (states, obs) = m.simulate_truth(12, &mut rng);
        let t = 10;
        let ll_true = m.ln_likelihood(&states[t], &obs[t]);
        // A cold (all-unburned) state explains mid-fire readings worse.
        let cold = FireState {
            cells: vec![CellFire::Unburned; 32 * 32],
        };
        let ll_cold = m.ln_likelihood(&cold, &obs[t]);
        assert!(ll_true > ll_cold, "{ll_true} vs {ll_cold}");
    }

    #[test]
    fn expected_temps_by_cell_state() {
        let m = default_scenario();
        let mut state = FireState {
            cells: vec![CellFire::Unburned; 32 * 32],
        };
        assert_eq!(m.expected_temp(&state, 0), AMBIENT_TEMP);
        let (x, y) = m.sensors()[0];
        state.cells[y * 32 + x] = CellFire::Burning {
            age: 0,
            intensity: 1.0,
        };
        assert_eq!(m.expected_temp(&state, 0), AMBIENT_TEMP + BURNING_TEMP);
        state.cells[y * 32 + x] = CellFire::Burned;
        assert_eq!(m.expected_temp(&state, 0), BURNED_TEMP);
    }
}
