//! Sequential importance sampling (SIS) — and why it collapses.
//!
//! §3.2 presents SIS as the recursive form of importance sampling
//! (`w_n = w_{n−1}·α_n`, O(1) per step) and then its "severe drawback":
//! "As n increases the IS estimate involves the product of more and more
//! random weights, which can cause the variance of the estimate to grow
//! exponentially or can cause π̂ₙ to 'collapse', in that one weight will
//! tend to 1 while the rest tend to 0."
//!
//! [`run_sis`] is that algorithm *without* the resampling fix, tracking the
//! effective sample size per step so the collapse is measurable; the
//! comparison against the SIR/particle filter (which resamples) is both a
//! unit test here and part of the E10 story.

use crate::pf::{Proposal, StateSpaceModel};
use crate::resample::effective_sample_size;
use mde_numeric::rng::{Rng, StreamFactory};

/// One SIS step's output: weighted particles (no resampling).
#[derive(Debug, Clone)]
pub struct SisStep<S> {
    /// Particle states.
    pub particles: Vec<S>,
    /// Normalized weights (carry over multiplicatively across steps).
    pub weights: Vec<f64>,
    /// Effective sample size — the §3.2 collapse diagnostic.
    pub ess: f64,
}

impl<S> SisStep<S> {
    /// Weighted posterior-mean estimate of a state statistic.
    pub fn estimate(&self, g: impl Fn(&S) -> f64) -> f64 {
        self.particles
            .iter()
            .zip(&self.weights)
            .map(|(s, &w)| w * g(s))
            .sum()
    }
}

/// Run sequential importance sampling (no resampling) for the observation
/// sequence, propagating multiplicative log-weights.
pub fn run_sis<M, Q>(
    model: &M,
    proposal: &Q,
    observations: &[M::Obs],
    n_particles: usize,
    seed: u64,
) -> Vec<SisStep<M::State>>
where
    M: StateSpaceModel,
    Q: Proposal<M>,
{
    assert!(n_particles >= 2, "need at least 2 particles");
    let factory = StreamFactory::new(seed);
    let mut steps: Vec<SisStep<M::State>> = Vec::with_capacity(observations.len());
    let mut ln_w = vec![0.0f64; n_particles];
    let mut states: Option<Vec<M::State>> = None;

    for (t, obs) in observations.iter().enumerate() {
        let step_factory = factory.child(t as u64);
        let mut rng: Rng = step_factory.stream(0);
        let mut new_states = Vec::with_capacity(n_particles);
        for i in 0..n_particles {
            let parent = states.as_ref().map(|s| &s[i]);
            let x = proposal.sample(model, parent, obs, &mut rng);
            // The recursion w_n = w_{n-1} · α_n, in log space.
            ln_w[i] += proposal.ln_weight(model, parent, &x, obs, &mut rng);
            new_states.push(x);
        }
        let max = ln_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = if max.is_finite() {
            let shifted: Vec<f64> = ln_w.iter().map(|lw| (lw - max).exp()).collect();
            let total: f64 = shifted.iter().sum();
            shifted.iter().map(|w| w / total).collect()
        } else {
            vec![1.0 / n_particles as f64; n_particles]
        };
        let ess = effective_sample_size(&weights);
        steps.push(SisStep {
            particles: new_states.clone(),
            weights,
            ess,
        });
        states = Some(new_states);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pf::{BootstrapProposal, ParticleFilter};
    use mde_numeric::dist::{Continuous, Normal};
    use mde_numeric::rng::rng_from_seed;

    struct LinGauss;

    impl StateSpaceModel for LinGauss {
        type State = f64;
        type Obs = f64;

        fn sample_initial(&self, rng: &mut Rng) -> f64 {
            2.0 * Normal::sample_standard(rng)
        }

        fn sample_transition(&self, prev: &f64, rng: &mut Rng) -> f64 {
            0.9 * prev + 0.5 * Normal::sample_standard(rng)
        }

        fn ln_likelihood(&self, state: &f64, obs: &f64) -> f64 {
            Normal::new(*state, 0.7).unwrap().ln_pdf(*obs)
        }
    }

    fn simulate(t: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let m = LinGauss;
        let mut rng = rng_from_seed(seed);
        let mut xs = vec![m.sample_initial(&mut rng)];
        for _ in 1..t {
            let prev = *xs.last().unwrap();
            xs.push(m.sample_transition(&prev, &mut rng));
        }
        let ys = xs
            .iter()
            .map(|&x| x + 0.7 * Normal::sample_standard(&mut rng))
            .collect();
        (xs, ys)
    }

    #[test]
    fn sis_weights_collapse_over_time() {
        // The §3.2 drawback, measured: ESS decays toward 1 without
        // resampling.
        let (_, ys) = simulate(40, 1);
        let steps = run_sis(&LinGauss, &BootstrapProposal, &ys, 200, 2);
        let early = steps[1].ess;
        let late = steps.last().unwrap().ess;
        assert!(early > 20.0, "early ESS {early}");
        assert!(
            late < early * 0.25,
            "ESS did not collapse: {early} -> {late}"
        );
        assert!(late < 15.0, "late ESS {late}");
    }

    #[test]
    fn resampling_prevents_the_collapse() {
        // The same filter *with* resampling (Algorithm 2) keeps ESS healthy
        // and tracks better at late times.
        let (xs, ys) = simulate(40, 3);
        let sis = run_sis(&LinGauss, &BootstrapProposal, &ys, 200, 4);
        let sir = ParticleFilter::new(200, 4).run(&LinGauss, &BootstrapProposal, &ys);
        // ESS after resampling (measured pre-resample each step) stays far
        // above SIS's collapsed tail.
        let sis_tail_ess = sis[35..].iter().map(|s| s.ess).sum::<f64>() / 5.0;
        let sir_tail_ess = sir[35..].iter().map(|s| s.ess).sum::<f64>() / 5.0;
        assert!(
            sir_tail_ess > 3.0 * sis_tail_ess,
            "SIR ESS {sir_tail_ess} vs SIS ESS {sis_tail_ess}"
        );
        // Late-time tracking error: SIR <= SIS on average.
        let err = |est: &dyn Fn(usize) -> f64| {
            (30..40).map(|t| (est(t) - xs[t]).abs()).sum::<f64>() / 10.0
        };
        let sis_err = err(&|t| sis[t].estimate(|&x| x));
        let sir_err = err(&|t| sir[t].estimate(|&x| x));
        assert!(
            sir_err <= sis_err * 1.1,
            "SIR err {sir_err} vs SIS err {sis_err}"
        );
    }

    #[test]
    fn sis_estimates_are_weighted_means() {
        let step = SisStep {
            particles: vec![1.0, 3.0],
            weights: vec![0.25, 0.75],
            ess: 1.6,
        };
        assert!((step.estimate(|&x| x) - 2.5).abs() < 1e-12);
    }
}
