//! The observability determinism contract, enforced end to end:
//!
//! * the deterministic metrics ledger (`replicates.*`, `attempts.*`,
//!   `mc.sample`) is bit-identical between the sequential and parallel
//!   Monte Carlo runners at any thread count, under retries and injected
//!   faults;
//! * a preempted-then-resumed campaign finishes with exactly the metrics
//!   of an uninterrupted one, while checkpoint I/O stays out-of-band;
//! * a fixed three-operator plan (filter → join → group-by) emits an
//!   exact golden span tree with per-operator row counts;
//! * every JSONL trace line is a schema-complete JSON object.

use model_data_ecosystems::core::obs::{JsonlSink, MemorySink, Tracer};
use model_data_ecosystems::core::resilience::{
    FaultKind, FaultPlan, RunOptions, RunPolicy, StopCause,
};
use model_data_ecosystems::mcdb::mc::MonteCarloQuery;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::{AggSpec, PreparedQuery};
use model_data_ecosystems::mcdb::vg::NormalVg;
use std::path::PathBuf;
use std::sync::Arc;

/// Master seed; CI sweeps `MDE_CHAOS_SEED` over the same assertions.
fn chaos_seed() -> u64 {
    std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

/// A scratch checkpoint path unique to this process and test.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(name: &str) -> Self {
        ScratchFile(std::env::temp_dir().join(format!(
            "mde-observability-{}-{}-{name}.ckpt",
            std::process::id(),
            chaos_seed()
        )))
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A stochastic campaign: sum one `Normal(mu, 1)` draw per `T` row.
fn normal_setup() -> (Catalog, MonteCarloQuery) {
    let mut db = Catalog::new();
    let mut builder = Table::build("T", &[("MU", DataType::Float)]);
    for mu in [0.0, 1.0, 2.5, -1.5] {
        builder = builder.row(vec![Value::from(mu)]);
    }
    db.insert(builder.finish().unwrap());
    let spec = RandomTableSpec::builder("OUT")
        .for_each(Plan::scan("T"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_exprs(&[Expr::col("MU"), Expr::lit(1.0)])
        .select(&[("V", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let q = MonteCarloQuery::new(
        vec![spec],
        Plan::scan("OUT").aggregate(&[], vec![AggSpec::new("S", AggFunc::Sum, Expr::col("V"))]),
    );
    (db, q)
}

/// The fixed deterministic catalog behind the golden-trace tests.
fn trace_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert(
        Table::build(
            "sales",
            &[
                ("id", DataType::Int),
                ("region", DataType::Str),
                ("amount", DataType::Float),
            ],
        )
        .row(vec![Value::from(1), Value::from("east"), Value::from(10.0)])
        .row(vec![Value::from(2), Value::from("west"), Value::from(20.0)])
        .row(vec![Value::from(3), Value::from("east"), Value::from(30.0)])
        .row(vec![Value::from(4), Value::from("east"), Value::Null])
        .finish()
        .unwrap(),
    );
    c.insert(
        Table::build(
            "regions",
            &[("name", DataType::Str), ("tax", DataType::Float)],
        )
        .row(vec![Value::from("east"), Value::from(0.1)])
        .row(vec![Value::from("west"), Value::from(0.2)])
        .finish()
        .unwrap(),
    );
    c
}

/// The fixed three-operator plan: filter → join → group-by.
fn trace_plan() -> Plan {
    Plan::scan("sales")
        .filter(Expr::col("amount").gt(Expr::lit(15.0)))
        .join(Plan::scan("regions"), &[("region", "name")])
        .aggregate(
            &["region"],
            vec![AggSpec::new("total", AggFunc::Sum, Expr::col("amount"))],
        )
}

// ---------------------------------------------------------------------------
// Differential: sequential vs parallel metrics
// ---------------------------------------------------------------------------

#[test]
fn parallel_metrics_are_bit_identical_to_sequential() {
    let seed = chaos_seed();
    let n = 24;
    let (db, q) = normal_setup();
    // Retries and faults exercise every counter the runners ledger:
    // replicate 2 panics once, replicate 5 burns two attempts (NaN, then
    // a typed error) before its third succeeds.
    let opts = RunOptions::policy(RunPolicy::Retry {
        max_attempts: 3,
        reseed: true,
    })
    .with_faults(
        FaultPlan::new()
            .fail_on(2, 0, FaultKind::Panic)
            .fail_on(5, 0, FaultKind::Nan)
            .fail_on(5, 1, FaultKind::Error),
    );

    let seq = q.run_with_options(&db, n, seed, &opts).unwrap();
    let m = &seq.report.metrics;
    assert_eq!(m.counter("replicates.attempted"), n as u64);
    assert_eq!(m.counter("replicates.succeeded"), n as u64);
    assert_eq!(m.counter("replicates.dropped"), 0);
    assert_eq!(m.counter("attempts.retried"), 3, "1 + 2 extra attempts");
    let samples = m.histogram("mc.sample").expect("sample histogram");
    assert_eq!(samples.count(), n as u64);
    // Wall-clock latency is ledgered, but out-of-band.
    assert!(m.duration("mc.replicate").is_some());

    for threads in [1, 2, 8] {
        let par = q
            .run_parallel_with_options(&db, n, seed, threads, &opts)
            .unwrap();
        // RunReport equality now covers the deterministic metrics ledger.
        assert_eq!(seq.report, par.report, "threads {threads}");
        let pm = &par.report.metrics;
        assert_eq!(
            pm.histogram("mc.sample"),
            Some(samples),
            "threads {threads}: sample histograms diverged"
        );
        assert_eq!(pm.counter("attempts.retried"), 3, "threads {threads}");
    }
}

// ---------------------------------------------------------------------------
// Differential: resumed vs uninterrupted metrics
// ---------------------------------------------------------------------------

#[test]
fn resumed_campaign_metrics_match_uninterrupted() {
    let seed = chaos_seed();
    let n = 16;
    let (db, q) = normal_setup();
    let baseline = q
        .run_with_options(&db, n, seed, &RunOptions::default())
        .unwrap();

    let scratch = ScratchFile::new("resume-metrics");
    let spec =
        model_data_ecosystems::core::resilience::CheckpointSpec::new(scratch.path()).every(2);
    let interrupted = q
        .run_with_options(
            &db,
            n,
            seed,
            &RunOptions::default()
                .with_checkpoint(spec.clone())
                .with_faults(FaultPlan::new().preempt_at(6)),
        )
        .unwrap();
    assert_eq!(interrupted.stopped, Some(StopCause::Preempted));
    // The preempted prefix's deterministic metrics round-trip through the
    // checkpoint file; its checkpoint I/O does not.
    let im = &interrupted.report.metrics;
    assert_eq!(im.histogram("mc.sample").unwrap().count(), 6);
    assert!(im.io_counter("ckpt.saves") > 0, "saves are ledgered");

    let resumed = q
        .resume_from(
            &db,
            n,
            seed,
            &RunOptions::default().with_checkpoint(spec),
            scratch.path(),
        )
        .unwrap();
    assert_eq!(resumed.stopped, None);
    // Equality covers counters and value histograms — the resumed run's
    // ledger is exactly the uninterrupted one's, even though its samples
    // 0..6 were observed before the preemption and decoded from disk.
    assert_eq!(resumed.report, baseline.report);
    assert_eq!(
        resumed
            .report
            .metrics
            .histogram("mc.sample")
            .unwrap()
            .count(),
        n as u64
    );
    // Out-of-band ledgers tell the truth about *this* process's I/O
    // instead: the resumed run saved fewer checkpoints than a full run
    // would, and none of that entered the equality above.
    assert!(resumed.report.metrics.io_counter("ckpt.bytes") > 0);
    assert!(baseline.report.metrics.io_counter("ckpt.bytes") == 0);
}

// ---------------------------------------------------------------------------
// Golden span tree
// ---------------------------------------------------------------------------

/// Drop `*_nanos` fields from a rendered span tree. The deterministic
/// ledger is every span field EXCEPT the `*_nanos` wall-clock ones
/// (DESIGN.md §6g); golden comparisons strip exactly that.
fn strip_nanos_fields(tree: &str) -> String {
    let mut out = String::new();
    let mut rest = tree;
    while let Some(i) = rest.find(", query.morsel_nanos=") {
        out.push_str(&rest[..i]);
        let after = &rest[i + ", query.morsel_nanos=".len()..];
        let end = after
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(after.len());
        rest = &after[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn fixed_plan_emits_exact_golden_span_tree() {
    let c = trace_catalog();
    let prepared = PreparedQuery::prepare(&trace_plan(), &c).unwrap();

    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::new(sink.clone());
    let out = prepared.execute_traced(&c, &tracer).unwrap();
    assert_eq!(out.len(), 2, "east and west survive the filter");

    // `query.morsels` / `query.simd_lanes` are deterministic execution
    // counters: one morsel each for filter, join probe, and aggregate —
    // result materialization adopts the output batch in O(1) and
    // dispatches none; the 4-row filter routes its 4 lanes through the
    // SIMD comparison fast path. Only wall-clock is stripped.
    assert_eq!(
        strip_nanos_fields(&sink.tree()),
        "query{exec=1, rows_out=2, query.morsels=3, query.simd_lanes=4}\n\
         \x20 aggregate{rows_in=2, groups=2}\n\
         \x20   join{left_rows=2, right_rows=2, rows_out=2}\n\
         \x20     filter{rows_in=4, rows_out=2}\n\
         \x20       scan{table=\"sales\", cache_hit=false, rows=4}\n\
         \x20     scan{table=\"regions\", cache_hit=false, rows=2}\n"
    );

    // Second execution on the same catalog: batches are already
    // transposed, so both scans report cache hits and the execution
    // counter advances.
    let sink2 = Arc::new(MemorySink::new());
    let tracer2 = Tracer::new(sink2.clone());
    prepared.execute_traced(&c, &tracer2).unwrap();
    assert_eq!(prepared.executions(), 2);
    let tree = sink2.tree();
    assert!(tree.contains("exec=2"), "{tree}");
    assert_eq!(tree.matches("cache_hit=true").count(), 2, "{tree}");

    // Children complete before their parents in the raw record stream.
    let names: Vec<String> = sink.records().into_iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        ["scan", "filter", "scan", "join", "aggregate", "query"]
    );
}

// ---------------------------------------------------------------------------
// JSONL schema
// ---------------------------------------------------------------------------

#[test]
fn jsonl_trace_lines_are_schema_complete() {
    let c = trace_catalog();
    let sink = Arc::new(JsonlSink::new(Vec::<u8>::new()));
    let tracer = Tracer::new(sink.clone());
    c.query_traced(&trace_plan(), &tracer).unwrap();
    drop(tracer);

    let sink = Arc::into_inner(sink).expect("sole owner after tracer drop");
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "one line per span:\n{text}");

    let mut seen_ids = Vec::new();
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not an object: {line}"
        );
        for key in [
            "\"span\":",
            "\"parent\":",
            "\"name\":",
            "\"fields\":",
            "\"duration_ns\":",
        ] {
            assert!(line.contains(key), "missing {key}: {line}");
        }
        let field = |key: &str| -> u64 {
            let at = line.find(key).unwrap() + key.len();
            line[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let (id, parent) = (field("\"span\":"), field("\"parent\":"));
        assert!(id >= 1, "span ids start at 1: {line}");
        assert!(!seen_ids.contains(&id), "duplicate span id: {line}");
        // Children are emitted before their parents, so a parent id is
        // either the root sentinel or a span not yet emitted — it can
        // never point at an already-finished span's child.
        assert_ne!(parent, id, "self-parent: {line}");
        seen_ids.push(id);
    }
    // Exactly one root.
    assert_eq!(
        lines.iter().filter(|l| l.contains("\"parent\":0,")).count(),
        1,
        "{text}"
    );
}
