//! Fuzz-style robustness properties for the SQL front end: arbitrary input
//! must produce a typed error or a valid plan — never a panic — and
//! well-formed generated queries must round-trip through parse + execute.

use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::sql::{
    parse_create_random_table, plan_from_sql, tokenize, VgRegistry,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert(
        Table::build(
            "t",
            &[
                ("a", DataType::Int),
                ("b", DataType::Float),
                ("s", DataType::Str),
            ],
        )
        .rows((0..7).map(|i| {
            vec![
                Value::from(i),
                Value::from(i as f64 * 1.5),
                Value::from(["x", "y"][i as usize % 2]),
            ]
        }))
        .finish()
        .unwrap(),
    );
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics on arbitrary ASCII-ish input.
    #[test]
    fn tokenizer_total_on_arbitrary_input(input in "[ -~]{0,120}") {
        let _ = tokenize(&input); // Ok or Err, never a panic
    }

    /// The SELECT parser never panics on arbitrary input.
    #[test]
    fn select_parser_total_on_arbitrary_input(input in "[ -~]{0,120}") {
        let _ = plan_from_sql(&input);
    }

    /// The DDL parser never panics on arbitrary input.
    #[test]
    fn ddl_parser_total_on_arbitrary_input(input in "[ -~]{0,120}") {
        let _ = parse_create_random_table(&input, &VgRegistry::standard());
    }

    /// The parser never panics on *near-miss* SQL: a valid skeleton with
    /// mutated fragments (the inputs a user actually types).
    #[test]
    fn select_parser_total_on_near_sql(
        cols in "[a-zA-Z*,() ]{1,20}",
        tail in "(WHERE|GROUP BY|ORDER BY|LIMIT|JOIN)? ?[a-z0-9<>=' ]{0,30}",
    ) {
        let sql = format!("SELECT {cols} FROM t {tail}");
        let _ = plan_from_sql(&sql);
    }

    /// End-to-end: a family of generated well-formed queries parses,
    /// executes, and matches the equivalent hand-built plan's results.
    #[test]
    fn generated_queries_execute_and_match_hand_built(
        threshold in -5i64..15,
        pick_col in 0usize..2,
        desc in any::<bool>(),
        limit in 1usize..10,
    ) {
        let col = ["a", "b"][pick_col];
        let sql = format!(
            "SELECT a, b FROM t WHERE {col} >= {threshold} ORDER BY a {} LIMIT {limit}",
            if desc { "DESC" } else { "ASC" },
        );
        let db = catalog();
        let via_sql = db.sql(&sql).unwrap();

        let mut keys = vec![if desc {
            model_data_ecosystems::mcdb::query::SortKey::desc(Expr::col("a"))
        } else {
            model_data_ecosystems::mcdb::query::SortKey::asc(Expr::col("a"))
        }];
        let hand = Plan::scan("t")
            .filter(Expr::col(col).ge(Expr::lit(threshold)))
            .project(&[("a", Expr::col("a")), ("b", Expr::col("b"))])
            .sort(std::mem::take(&mut keys))
            .limit(limit);
        let via_plan = db.query(&hand).unwrap();
        prop_assert_eq!(via_sql.rows(), via_plan.rows(), "sql: {}", sql);
    }

    /// Every generated well-formed query must produce the same result (or
    /// the same failure status) under the default vectorized engine and the
    /// legacy row-at-a-time executor, including coercion edges like integer
    /// division and comparisons mixing Int and Float columns.
    #[test]
    fn generated_queries_identical_under_both_engines(
        threshold in -5i64..15,
        divisor in -3i64..4,
        pick_col in 0usize..3,
        desc in any::<bool>(),
        limit in 1usize..10,
    ) {
        let col = ["a", "b", "s"][pick_col];
        let sql = format!(
            "SELECT a, b / {divisor} AS r FROM t WHERE {col} <> '{threshold}' ORDER BY b {} LIMIT {limit}",
            if desc { "DESC" } else { "ASC" },
        );
        let db = catalog();
        if let Ok(plan) = plan_from_sql(&sql) {
            match (db.query(&plan), db.query_unoptimized(&plan)) {
                (Ok(vectorized), Ok(legacy)) => {
                    prop_assert_eq!(vectorized.rows(), legacy.rows(), "sql: {}", sql);
                }
                (Err(_), Err(_)) => {}
                (v, l) => prop_assert!(
                    false,
                    "engine status divergence for {}: vectorized={:?} legacy={:?}",
                    sql, v.map(|t| t.len()), l.map(|t| t.len())
                ),
            }
        }
    }
}
