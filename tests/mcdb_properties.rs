//! Property-based integration tests for the Monte Carlo database.
//!
//! The load-bearing invariant of MCDB's performance story (§2.1): tuple-
//! bundle execution must be *semantically invisible* — instantiating
//! iteration `i` of a bundled query result equals running the ordinary
//! executor on iteration `i` of the inputs, for random queries over random
//! stochastic tables.

use model_data_ecosystems::mcdb::bundle::{execute_bundled, BundledCatalog, BundledTable};
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::{AggFunc, AggSpec};
use model_data_ecosystems::mcdb::vg::NormalVg;
use model_data_ecosystems::numeric::rng::rng_from_seed;
use proptest::prelude::*;
use std::sync::Arc;

fn base_catalog(n_items: usize, mean: f64, std: f64) -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int), ("GROUP", DataType::Str)])
            .rows(
                (0..n_items)
                    .map(|i| vec![Value::from(i as i64), Value::from(["a", "b", "c"][i % 3])]),
            )
            .finish()
            .unwrap(),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(mean), Value::from(std)])
        .finish()
        .unwrap(),
    );
    db
}

fn sales_spec() -> RandomTableSpec {
    RandomTableSpec::builder("SALES")
        .for_each(Plan::scan("ITEMS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_query(Plan::scan("PARAMS"))
        .select(&[
            ("IID", Expr::col("IID")),
            ("GROUP", Expr::col("GROUP")),
            ("AMT", Expr::col("VALUE")),
        ])
        .build()
        .unwrap()
}

/// A small family of query plans exercising filter/project/join/aggregate.
fn plan_for(case: u8, threshold: f64) -> Plan {
    match case % 4 {
        0 => Plan::scan("SALES").filter(Expr::col("AMT").gt(Expr::lit(threshold))),
        1 => Plan::scan("SALES")
            .project(&[
                ("IID", Expr::col("IID")),
                ("TAXED", Expr::col("AMT").mul(Expr::lit(1.2))),
            ])
            .filter(Expr::col("TAXED").lt(Expr::lit(threshold * 2.0))),
        2 => Plan::scan("SALES").aggregate(
            &["GROUP"],
            vec![
                AggSpec::count_star("N"),
                AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("AMT")),
            ],
        ),
        _ => Plan::scan("SALES")
            .join(Plan::scan("ITEMS"), &[("IID", "IID")])
            .filter(Expr::col("AMT").gt(Expr::lit(threshold)))
            .aggregate(&[], vec![AggSpec::new("M", AggFunc::Max, Expr::col("AMT"))]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bundled_execution_equals_naive_per_iteration(
        n_items in 1usize..12,
        mean in -50.0f64..50.0,
        std in 0.5f64..20.0,
        n_iters in 1usize..8,
        case in 0u8..4,
        threshold in -40.0f64..40.0,
        seed in 0u64..1000,
    ) {
        let db = base_catalog(n_items, mean, std);
        let spec = sales_spec();
        let mut rng = rng_from_seed(seed);
        let bundled = BundledTable::from_spec(&spec, &db, n_iters, &mut rng).unwrap();

        let mut bc = BundledCatalog::new(n_iters);
        bc.insert(bundled.clone()).unwrap();
        bc.insert_const(db.get("ITEMS").unwrap());

        let plan = plan_for(case, threshold);
        let bundled_result = execute_bundled(&plan, &bc).unwrap();

        for i in 0..n_iters {
            let mut cat = Catalog::new();
            cat.insert(bundled.instantiate(i).unwrap());
            cat.insert(db.get("ITEMS").unwrap().clone());
            let naive = cat.query_unoptimized(&plan).unwrap();
            let inst = bundled_result.instantiate(i).unwrap();
            prop_assert_eq!(
                inst.rows(), naive.rows(),
                "divergence at iteration {} (case {})", i, case
            );
        }
    }

    #[test]
    fn optimizer_never_changes_results(
        n_items in 1usize..10,
        threshold in -40.0f64..40.0,
        seed in 0u64..500,
    ) {
        let db = base_catalog(n_items, 10.0, 5.0);
        let spec = sales_spec();
        let mut rng = rng_from_seed(seed);
        let mut cat = db.clone();
        cat.insert(spec.realize(&db, &mut rng).unwrap());

        let plan = Plan::scan("SALES")
            .join(Plan::scan("ITEMS"), &[("IID", "IID")])
            .filter(
                Expr::col("AMT")
                    .gt(Expr::lit(threshold))
                    .and(Expr::col("GROUP").ne(Expr::lit("zzz"))),
            );
        let optimized = cat.query(&plan).unwrap();
        let raw = cat.query_unoptimized(&plan).unwrap();
        prop_assert_eq!(optimized.rows(), raw.rows());
    }

    #[test]
    fn realization_matches_schema_and_row_count(
        n_items in 0usize..20,
        mean in -100.0f64..100.0,
        std in 0.1f64..50.0,
        seed in 0u64..1000,
    ) {
        let db = base_catalog(n_items, mean, std);
        let spec = sales_spec();
        let mut rng = rng_from_seed(seed);
        let t = spec.realize(&db, &mut rng).unwrap();
        prop_assert_eq!(t.len(), n_items);
        prop_assert_eq!(t.schema().names(), vec!["IID", "GROUP", "AMT"]);
        // All values validated against the schema by construction; spot-
        // check the numeric column is finite.
        for v in t.column_f64("AMT").unwrap() {
            prop_assert!(v.is_finite());
        }
    }
}
