//! Property-based integration tests for the Monte Carlo database.
//!
//! The load-bearing invariant of MCDB's performance story (§2.1): tuple-
//! bundle execution must be *semantically invisible* — instantiating
//! iteration `i` of a bundled query result equals running the ordinary
//! executor on iteration `i` of the inputs, for random queries over random
//! stochastic tables.

use model_data_ecosystems::mcdb::bundle::{execute_bundled, BundledCatalog, BundledTable};
use model_data_ecosystems::mcdb::expr::ScalarFunc;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::{AggFunc, AggSpec};
use model_data_ecosystems::mcdb::vg::NormalVg;
use model_data_ecosystems::numeric::rng::rng_from_seed;
use proptest::prelude::*;
use std::sync::Arc;

fn base_catalog(n_items: usize, mean: f64, std: f64) -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int), ("GROUP", DataType::Str)])
            .rows(
                (0..n_items)
                    .map(|i| vec![Value::from(i as i64), Value::from(["a", "b", "c"][i % 3])]),
            )
            .finish()
            .unwrap(),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(mean), Value::from(std)])
        .finish()
        .unwrap(),
    );
    db
}

fn sales_spec() -> RandomTableSpec {
    RandomTableSpec::builder("SALES")
        .for_each(Plan::scan("ITEMS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_query(Plan::scan("PARAMS"))
        .select(&[
            ("IID", Expr::col("IID")),
            ("GROUP", Expr::col("GROUP")),
            ("AMT", Expr::col("VALUE")),
        ])
        .build()
        .unwrap()
}

/// A small family of query plans exercising filter/project/join/aggregate.
fn plan_for(case: u8, threshold: f64) -> Plan {
    match case % 4 {
        0 => Plan::scan("SALES").filter(Expr::col("AMT").gt(Expr::lit(threshold))),
        1 => Plan::scan("SALES")
            .project(&[
                ("IID", Expr::col("IID")),
                ("TAXED", Expr::col("AMT").mul(Expr::lit(1.2))),
            ])
            .filter(Expr::col("TAXED").lt(Expr::lit(threshold * 2.0))),
        2 => Plan::scan("SALES").aggregate(
            &["GROUP"],
            vec![
                AggSpec::count_star("N"),
                AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("AMT")),
            ],
        ),
        _ => Plan::scan("SALES")
            .join(Plan::scan("ITEMS"), &[("IID", "IID")])
            .filter(Expr::col("AMT").gt(Expr::lit(threshold)))
            .aggregate(&[], vec![AggSpec::new("M", AggFunc::Max, Expr::col("AMT"))]),
    }
}

/// A catalog with NULLs sprinkled into join/group keys and values so the
/// differential test hits the semantic edges (NULL keys never match, NULL
/// groups do group together, NULL predicates mean "drop the row").
fn edge_catalog(n_rows: usize, null_every: usize) -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build(
            "FACT",
            &[
                ("K", DataType::Int),
                ("V", DataType::Float),
                ("Q", DataType::Int),
            ],
        )
        .rows((0..n_rows).map(|i| {
            let k = if i % null_every == 0 {
                Value::Null
            } else {
                Value::from((i % 5) as i64)
            };
            let v = if i % (null_every + 2) == 0 {
                Value::Null
            } else {
                Value::from(i as f64 - 7.5)
            };
            vec![k, v, Value::from(i as i64 - 3)]
        }))
        .finish()
        .unwrap(),
    );
    db.insert(
        Table::build("DIM", &[("K", DataType::Int), ("LABEL", DataType::Str)])
            .rows((0..4).map(|j| {
                let k = if j == 0 {
                    Value::Null
                } else {
                    Value::from(j as i64)
                };
                vec![k, Value::from(["none", "lo", "mid", "hi"][j])]
            }))
            .finish()
            .unwrap(),
    );
    db
}

/// Edge-case plan family: each arm stresses one semantic corner that a
/// vectorized engine can easily get subtly wrong.
fn edge_plan_for(case: u8, divisor: i64, threshold: f64, limit: usize) -> Plan {
    match case % 6 {
        // NULL join keys must never match, and fact-major row order must
        // survive regardless of which side the hash table is built on.
        0 => Plan::scan("FACT")
            .join(Plan::scan("DIM"), &[("K", "K")])
            .filter(Expr::col("V").gt(Expr::lit(threshold))),
        // Int/Int division coerces to Float; divisor 0 yields NULL, which
        // as a filter predicate drops the row (no error).
        1 => Plan::scan("FACT")
            .project(&[
                ("K", Expr::col("K")),
                ("RATIO", Expr::col("Q").div(Expr::lit(divisor))),
            ])
            .filter(Expr::col("RATIO").ge(Expr::lit(0))),
        // NULL group keys group together; SUM over all-NULL groups is NULL.
        2 => Plan::scan("FACT").aggregate(
            &["K"],
            vec![
                AggSpec::count_star("N"),
                AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("V")),
                AggSpec::new("PEAK", AggFunc::Max, Expr::col("Q")),
            ],
        ),
        // Kleene three-valued logic: NULL OR true = true, NULL AND x = NULL
        // or false — no short-circuit divergence allowed.
        3 => Plan::scan("FACT").filter(
            Expr::col("V")
                .gt(Expr::lit(threshold))
                .or(Expr::col("K").is_null())
                .and(Expr::col("Q").ne(Expr::lit(divisor))),
        ),
        // Sqrt of negatives is NULL; projection then sort puts NULLs first.
        4 => Plan::scan("FACT")
            .project(&[
                ("K", Expr::col("K")),
                ("ROOT", Expr::col("V").func(ScalarFunc::Sqrt)),
            ])
            .sort(vec![model_data_ecosystems::mcdb::query::SortKey::asc(
                Expr::col("ROOT"),
            )])
            .limit(limit),
        // Selection vectors composing through filter → sort → limit, with
        // a wrapping-arithmetic expression in the sort key.
        _ => Plan::scan("FACT")
            .filter(Expr::col("Q").mul(Expr::lit(3)).le(Expr::lit(divisor * 7)))
            .sort(vec![model_data_ecosystems::mcdb::query::SortKey::desc(
                Expr::col("V"),
            )])
            .limit(limit),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bundled_execution_equals_naive_per_iteration(
        n_items in 1usize..12,
        mean in -50.0f64..50.0,
        std in 0.5f64..20.0,
        n_iters in 1usize..8,
        case in 0u8..4,
        threshold in -40.0f64..40.0,
        seed in 0u64..1000,
    ) {
        let db = base_catalog(n_items, mean, std);
        let spec = sales_spec();
        let mut rng = rng_from_seed(seed);
        let bundled = BundledTable::from_spec(&spec, &db, n_iters, &mut rng).unwrap();

        let mut bc = BundledCatalog::new(n_iters);
        bc.insert(bundled.clone()).unwrap();
        bc.insert_const(db.get("ITEMS").unwrap());

        let plan = plan_for(case, threshold);
        let bundled_result = execute_bundled(&plan, &bc).unwrap();

        for i in 0..n_iters {
            let mut cat = Catalog::new();
            cat.insert(bundled.instantiate(i).unwrap());
            cat.insert(db.get("ITEMS").unwrap().clone());
            let naive = cat.query_unoptimized(&plan).unwrap();
            let inst = bundled_result.instantiate(i).unwrap();
            prop_assert_eq!(
                inst.rows(), naive.rows(),
                "divergence at iteration {} (case {})", i, case
            );
        }
    }

    #[test]
    fn optimizer_never_changes_results(
        n_items in 1usize..10,
        threshold in -40.0f64..40.0,
        seed in 0u64..500,
    ) {
        let db = base_catalog(n_items, 10.0, 5.0);
        let spec = sales_spec();
        let mut rng = rng_from_seed(seed);
        let mut cat = db.clone();
        cat.insert(spec.realize(&db, &mut rng).unwrap());

        let plan = Plan::scan("SALES")
            .join(Plan::scan("ITEMS"), &[("IID", "IID")])
            .filter(
                Expr::col("AMT")
                    .gt(Expr::lit(threshold))
                    .and(Expr::col("GROUP").ne(Expr::lit("zzz"))),
            );
        let optimized = cat.query(&plan).unwrap();
        let raw = cat.query_unoptimized(&plan).unwrap();
        prop_assert_eq!(optimized.rows(), raw.rows());
    }

    /// The vectorized columnar engine (the default `Catalog::query` path)
    /// must be observationally identical to the legacy row-at-a-time
    /// executor on plans exercising NULL join keys, NULL group keys,
    /// Kleene logic, division by zero, Int→Float coercion, and
    /// filter→sort→limit selection-vector composition.
    #[test]
    fn vectorized_engine_matches_legacy_on_edge_plans(
        n_rows in 0usize..40,
        null_every in 1usize..5,
        divisor in -2i64..3,
        threshold in -10.0f64..10.0,
        case in 0u8..6,
        limit in 1usize..12,
    ) {
        let db = edge_catalog(n_rows, null_every);
        let plan = edge_plan_for(case, divisor, threshold, limit);
        match (db.query(&plan), db.query_unoptimized(&plan)) {
            (Ok(vectorized), Ok(legacy)) => {
                prop_assert_eq!(vectorized.schema(), legacy.schema(), "schema divergence (case {})", case);
                prop_assert_eq!(vectorized.rows(), legacy.rows(), "row divergence (case {})", case);
            }
            (Err(_), Err(_)) => {} // both engines reject the plan/data
            (v, l) => prop_assert!(
                false,
                "engine status divergence (case {}): vectorized={:?} legacy={:?}",
                case, v.map(|t| t.len()), l.map(|t| t.len())
            ),
        }
    }

    #[test]
    fn prepared_realization_equals_direct_realization(
        n_items in 0usize..15,
        mean in -50.0f64..50.0,
        std in 0.5f64..20.0,
        seed in 0u64..1000,
    ) {
        let db = base_catalog(n_items, mean, std);
        let spec = sales_spec();
        let prepared = spec.prepare(&db).unwrap();
        let direct = spec.realize(&db, &mut rng_from_seed(seed)).unwrap();
        let via_prepared = prepared.realize(&db, &mut rng_from_seed(seed)).unwrap();
        prop_assert_eq!(direct.rows(), via_prepared.rows());
        // Reuse of the same prepared spec must be deterministic given the seed.
        let again = prepared.realize(&db, &mut rng_from_seed(seed)).unwrap();
        prop_assert_eq!(via_prepared.rows(), again.rows());
    }

    #[test]
    fn realization_matches_schema_and_row_count(
        n_items in 0usize..20,
        mean in -100.0f64..100.0,
        std in 0.1f64..50.0,
        seed in 0u64..1000,
    ) {
        let db = base_catalog(n_items, mean, std);
        let spec = sales_spec();
        let mut rng = rng_from_seed(seed);
        let t = spec.realize(&db, &mut rng).unwrap();
        prop_assert_eq!(t.len(), n_items);
        prop_assert_eq!(t.schema().names(), vec!["IID", "GROUP", "AMT"]);
        // All values validated against the schema by construction; spot-
        // check the numeric column is finite.
        for v in t.column_f64("AMT").unwrap() {
            prop_assert!(v.is_finite());
        }
    }
}
