//! Cross-crate integration: calibrating the consumer-market ABS (§3.1).
//!
//! A ground-truth market with known θ* produces "observed" statistics; the
//! method of simulated moments recovers θ. This exercises `mde-abs`
//! (simulation), `mde-calibrate` (MSM + optimizers), and `mde-metamodel`
//! (the kriging surrogate path) together.

use model_data_ecosystems::abs::market::{MarketConfig, MarketModel, MarketParams};
use model_data_ecosystems::calibrate::kriging_cal::{kriging_calibrate, KrigingCalConfig};
use model_data_ecosystems::calibrate::msm::{MsmProblem, Simulator};
use model_data_ecosystems::calibrate::optim::Bounds;
use model_data_ecosystems::numeric::rng::rng_from_seed;

fn observed_statistics(cfg: MarketConfig, theta_star: &MarketParams) -> Vec<f64> {
    let mut observed = vec![0.0; 4];
    let reps = 16;
    for seed in 0..reps {
        let s = MarketModel::simulate_summary(cfg, &theta_star.to_vec(), 500 + seed);
        for (o, v) in observed.iter_mut().zip(s) {
            *o += v / reps as f64;
        }
    }
    observed
}

#[test]
fn msm_recovers_market_parameters() {
    let cfg = MarketConfig {
        n: 300,
        ticks: 30,
        ..MarketConfig::default()
    };
    let theta_star = MarketParams {
        media_reach: 0.03,
        wom_strength: 0.06,
        purchase_propensity: 0.2,
    };
    let observed = observed_statistics(cfg, &theta_star);

    let simulator: &Simulator =
        &|theta: &[f64], seed: u64| MarketModel::simulate_summary(cfg, theta, seed);
    let problem = MsmProblem::new(observed, simulator, 6, 42);
    let res = problem.calibrate(&[0.05, 0.05, 0.3], 150).unwrap();

    // The objective at the estimate is far below the start's, and the
    // recovered θ is in the right region (ABS calibration is noisy; the
    // §3.1 goal is "approximately match existing datasets").
    assert!(res.fx < problem.objective(&[0.05, 0.05, 0.3]) * 0.5);
    assert!(
        (res.x[0] - 0.03).abs() < 0.03,
        "media_reach estimate {}",
        res.x[0]
    );
    assert!(
        (res.x[2] - 0.2).abs() < 0.15,
        "purchase_propensity estimate {}",
        res.x[2]
    );
    // Simulated adoption at θ̂ matches observed adoption closely.
    let at_hat = MarketModel::simulate_summary(cfg, &res.x, 9999);
    let at_star = observed_statistics(cfg, &theta_star);
    assert!(
        (at_hat[1] - at_star[1]).abs() < 0.1,
        "adoption: fitted {} vs observed {}",
        at_hat[1],
        at_star[1]
    );
}

#[test]
fn kriging_surrogate_calibration_runs_on_abs_objective() {
    let cfg = MarketConfig {
        n: 200,
        ticks: 25,
        ..MarketConfig::default()
    };
    let theta_star = MarketParams {
        media_reach: 0.04,
        wom_strength: 0.05,
        purchase_propensity: 0.25,
    };
    let observed = observed_statistics(cfg, &theta_star);
    let simulator: &Simulator =
        &|theta: &[f64], seed: u64| MarketModel::simulate_summary(cfg, theta, seed);
    let problem = MsmProblem::new(observed, simulator, 4, 7);

    let mut rng = rng_from_seed(11);
    let res = kriging_calibrate(
        |theta, _| problem.objective(theta),
        &Bounds::new(vec![(0.005, 0.15), (0.005, 0.2), (0.05, 0.6)]).expect("valid bounds"),
        &KrigingCalConfig {
            design_runs: 17,
            infill_rounds: 3,
            ..KrigingCalConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    // With ~20 expensive evaluations the surrogate already finds a
    // near-feasible θ (J well below the prior-free scale of the moments).
    assert!(res.best.fx < 0.05, "best J = {}", res.best.fx);
    assert_eq!(res.evaluated.len(), 17 + 3);
}
