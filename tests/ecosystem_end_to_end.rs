//! End-to-end integration: the full model-data ecosystem loop.
//!
//! Data → stochastic models attached (MCDB) → what-if distribution;
//! composite models with auto-harmonization (Splash); run optimization
//! (result caching); and the Figure 1 contrast between shallow
//! extrapolation and regime-aware simulation.

use model_data_ecosystems::core::composite::{CompositeModel, ParamAssignment};
use model_data_ecosystems::core::registry::{
    FnSimModel, ModelMetadata, ParamSpec, PerfStats, PortSpec, Registry,
};
use model_data_ecosystems::core::whatif::{shallow_extrapolation, WhatIfSession};
use model_data_ecosystems::harmonize::series::TimeSeries;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::{AggFunc, AggSpec};
use model_data_ecosystems::mcdb::vg::NormalVg;
use model_data_ecosystems::numeric::dist::{Distribution, Normal};
use std::sync::Arc;

#[test]
fn what_if_session_full_loop() {
    let mut session = WhatIfSession::new();
    session.add_data(
        Table::build(
            "ITEMS",
            &[("IID", DataType::Int), ("PRICE", DataType::Float)],
        )
        .rows((0..25).map(|i| vec![Value::from(i), Value::from(5.0 + (i % 5) as f64)]))
        .finish()
        .unwrap(),
    );
    session.add_data(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(20.0), Value::from(4.0)])
        .finish()
        .unwrap(),
    );
    session.attach_stochastic(
        RandomTableSpec::builder("DEMAND")
            .for_each(Plan::scan("ITEMS"))
            .with_vg(Arc::new(NormalVg))
            .vg_params_query(Plan::scan("PARAMS"))
            .select(&[
                ("IID", Expr::col("IID")),
                ("PRICE", Expr::col("PRICE")),
                ("UNITS", Expr::col("VALUE")),
            ])
            .build()
            .unwrap(),
    );

    // Revenue = Σ price × units across items.
    let q = Plan::scan("DEMAND")
        .project(&[("REV", Expr::col("PRICE").mul(Expr::col("UNITS")))])
        .aggregate(
            &[],
            vec![AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("REV"))],
        );
    let res = session.what_if(&q, 400, 3).unwrap();

    // E[total] = 20 × Σ price = 20 × 25 × 7 = 3500.
    assert!((res.mean() - 3500.0).abs() < 40.0, "mean {}", res.mean());
    assert!(res.mean_ci(0.95).unwrap().contains(3500.0));
    assert!(res.quantile(0.99).unwrap() > res.quantile(0.5).unwrap());
    // Deterministic across serial/parallel execution.
    let par = session.what_if_parallel(&q, 400, 3, 3).unwrap();
    assert_eq!(res.samples(), par.samples());
}

#[test]
fn composite_platform_with_three_stage_chain() {
    // weather (hourly) → demand (daily) → cost (weekly): two tick
    // mismatches auto-resolved in one composite.
    let mut reg = Registry::new();
    reg.register_model(Arc::new(FnSimModel::new(
        ModelMetadata {
            name: "weather".into(),
            description: "hourly temperature".into(),
            inputs: vec![],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["temp".into()],
                tick: 1.0 / 24.0,
            },
            params: vec![ParamSpec {
                name: "mean_temp".into(),
                default: 20.0,
                lo: 0.0,
                hi: 40.0,
            }],
            perf: PerfStats::default(),
        },
        |_i, p, rng| {
            let noise = Normal::new(0.0, 2.0).expect("static");
            let times: Vec<f64> = (0..24 * 14).map(|h| h as f64 / 24.0).collect();
            let vals: Vec<f64> = times
                .iter()
                .map(|t| p[0] + 8.0 * (t * std::f64::consts::TAU).sin() + noise.sample(rng))
                .collect();
            Ok(TimeSeries::univariate("temp", times, vals)?)
        },
    )));
    reg.register_model(Arc::new(FnSimModel::new(
        ModelMetadata {
            name: "demand".into(),
            description: "daily heating demand".into(),
            inputs: vec![PortSpec {
                name: "in".into(),
                channels: vec!["temp".into()],
                tick: 1.0,
            }],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["kwh".into()],
                tick: 1.0,
            },
            params: vec![],
            perf: PerfStats::default(),
        },
        |inputs, _p, _rng| {
            let temp = inputs[0].channel("temp")?;
            Ok(TimeSeries::univariate(
                "kwh",
                inputs[0].times().to_vec(),
                temp.iter().map(|t| (25.0 - t).max(0.0) * 10.0).collect(),
            )?)
        },
    )));
    reg.register_model(Arc::new(FnSimModel::new(
        ModelMetadata {
            name: "cost".into(),
            description: "weekly energy cost".into(),
            inputs: vec![PortSpec {
                name: "in".into(),
                channels: vec!["kwh".into()],
                tick: 7.0,
            }],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["eur".into()],
                tick: 7.0,
            },
            params: vec![],
            perf: PerfStats::default(),
        },
        |inputs, _p, _rng| {
            let kwh = inputs[0].channel("kwh")?;
            Ok(TimeSeries::univariate(
                "eur",
                inputs[0].times().to_vec(),
                kwh.iter().map(|k| k * 0.3).collect(),
            )?)
        },
    )));

    let mut comp = CompositeModel::new();
    let w = comp.add_model("weather");
    let d = comp.add_model("demand");
    let c = comp.add_model("cost");
    comp.connect(w, d, 0);
    comp.connect(d, c, 0);
    // Two tick mismatches must be detected.
    let mismatches = comp.detect_mismatches(&reg).unwrap();
    assert_eq!(mismatches.len(), 2);

    let plan = comp.plan(&reg).unwrap();
    let mc = plan
        .run_monte_carlo(&ParamAssignment::new(), 30, 5, |ts| {
            let v = ts.channel("eur").expect("eur");
            v.iter().sum::<f64>() / v.len() as f64
        })
        .unwrap();
    // Mean temp 20, sin averages out: daily kwh ≈ E[(25 − T)⁺]·10 ≈ 60–80;
    // weekly mean cost ≈ kwh·0.3 → within a broad sanity band.
    assert!(
        (5.0..50.0).contains(&mc.summary.mean()),
        "weekly cost {}",
        mc.summary.mean()
    );
    assert!(mc.summary.sample_variance() > 0.0);
}

#[test]
fn figure1_shallow_extrapolation_misses_regime_change() {
    // A boom-bust "housing index": growth 1970–2006, collapse after.
    let years: Vec<f64> = (1970..=2011).map(|y| y as f64).collect();
    let index: Vec<f64> = years
        .iter()
        .map(|&y| {
            if y <= 2006.0 {
                100.0 * (0.045 * (y - 1970.0)).exp()
            } else {
                100.0 * (0.045 * 36.0f64).exp() * (1.0 - 0.07 * (y - 2006.0))
            }
        })
        .collect();
    let mut hist = Table::build(
        "HOUSING",
        &[("YEAR", DataType::Float), ("INDEX", DataType::Float)],
    );
    for (y, v) in years.iter().zip(&index).filter(|(y, _)| **y <= 2006.0) {
        hist = hist.row(vec![Value::from(*y), Value::from(*v)]);
    }
    let table = hist.finish().unwrap();

    let forecast_2011 = shallow_extrapolation(&table, "YEAR", "INDEX", 5).unwrap();
    let actual_2011 = *index.last().unwrap();
    // The shallow model extrapolates the boom and overshoots massively.
    assert!(
        forecast_2011 > actual_2011 * 1.3,
        "forecast {forecast_2011} vs actual {actual_2011}"
    );
}
