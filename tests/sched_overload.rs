//! Overload chaos harness for the campaign scheduler.
//!
//! Drives a mixed multi-tenant workload — real Monte Carlo query
//! campaigns from `mde-mcdb` alongside synthetic flaky/pausable work —
//! through `mde_core::Scheduler` under injected overload (stalled
//! workers, slowdowns, queue-full admissions, mid-run sheds and
//! preemptions) and asserts the robustness contract:
//!
//! * no deadlock and no panic: every run drains;
//! * every campaign terminates in exactly one taxonomy arm — completed,
//!   typed `Overloaded` rejection, or a resumable checkpoint;
//! * the deterministic half of the ledger (admission counters, retry
//!   schedules, attempt counts, terminal statuses) is bit-identical
//!   across 1, 2, and 8 worker threads;
//! * a shed-but-resumable campaign actually resumes and finishes.

use mde_core::resilience::{
    CampaignCtl, CampaignError, CampaignOutput, CampaignStep, FaultPlan, Overloaded, Priority,
    RunOptions, RunPolicy, RunReport,
};
use mde_core::sched::{CampaignSpec, CampaignStatus, SchedConfig, SchedRun, Scheduler};
use mde_mcdb::mc::MonteCarloQuery;
use mde_mcdb::prelude::*;
use mde_mcdb::sched::McCampaign;
use mde_numeric::resilience::sched::Campaign;
use mde_numeric::{BackoffConfig, BreakerConfig};
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// A small Monte Carlo estimation campaign (sum of normals over 6 items).
fn mc_campaign(n: usize, seed: u64, policy: RunPolicy) -> McCampaign {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int)])
            .rows((0..6).map(|i| vec![Value::from(i)]))
            .finish()
            .unwrap(),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(10.0), Value::from(2.0)])
        .finish()
        .unwrap(),
    );
    let spec = RandomTableSpec::builder("SALES")
        .for_each(mde_mcdb::query::Plan::scan("ITEMS"))
        .with_vg(std::sync::Arc::new(mde_mcdb::vg::NormalVg))
        .vg_params_query(mde_mcdb::query::Plan::scan("PARAMS"))
        .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let plan = mde_mcdb::query::Plan::scan("SALES").aggregate(
        &[],
        vec![mde_mcdb::query::AggSpec::new(
            "TOTAL",
            AggFunc::Sum,
            Expr::col("AMT"),
        )],
    );
    McCampaign::new(
        MonteCarloQuery::new(vec![spec], plan),
        db,
        n,
        seed,
        RunOptions::policy(policy),
    )
}

/// Synthetic campaign that fails retryably `failures` times then
/// completes; cancellation stops it at a resumable boundary.
struct Flaky {
    failures: u32,
}

impl Campaign for Flaky {
    fn run(&mut self, ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
        if ctl.cancel.is_cancelled() {
            return Ok(CampaignStep::Boundary { resumable: true });
        }
        if self.failures > 0 {
            self.failures -= 1;
            return Err(CampaignError::retryable("injected transient failure"));
        }
        Ok(CampaignStep::Done(CampaignOutput {
            value: Some(42.0),
            report: RunReport::new(),
        }))
    }
}

fn overload_cfg(seed: u64) -> SchedConfig {
    // Stall campaign 0, slow campaign 4, force a queue-full rejection on
    // the 9th submission, preempt campaign 2's first slice, and shed
    // campaign 5 mid-run. Fault placement is keyed off the chaos seed so
    // the CI matrix exercises different victims.
    let stalled = seed % 3;
    let slowed = 3 + (seed % 2);
    let faults = FaultPlan::new()
        .stall_worker(stalled)
        .slow_worker(slowed, 10)
        .queue_full_at(8)
        .preempt_campaign_at(2, 0)
        .shed_campaign_at(5, 0);
    SchedConfig {
        queue_capacity: 4,
        cost_budget: 1_000,
        max_attempts: 4,
        backoff: BackoffConfig {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
            jitter: 0.25,
        },
        breaker: BreakerConfig {
            trip_after: 8,
            cooldown: 2,
        },
        stall_ms: 30,
        faults: Some(faults),
        ..SchedConfig::default()
    }
}

/// Submit the mixed workload: 10 submissions across 3 tenants. Returns
/// (admitted ids, rejected submission count).
fn submit_workload(s: &mut Scheduler, seed: u64) -> (Vec<u64>, usize) {
    let tenants = ["acme", "globex", "initech"];
    let mut admitted = Vec::new();
    let mut rejected = 0;
    for i in 0..10u64 {
        let tenant = tenants[(i % 3) as usize];
        let spec = CampaignSpec::new(tenant, format!("c{i}"))
            .on_resource(if i % 2 == 0 { "mcdb" } else { "sim" })
            .with_priority(match i % 3 {
                0 => Priority::Interactive,
                1 => Priority::Batch,
                _ => Priority::BestEffort,
            })
            .with_cost(1 + i % 3);
        let campaign: Box<dyn Campaign> = match i % 3 {
            // Real Monte Carlo campaigns, best-effort ones absorb sheds.
            0 => Box::new(mc_campaign(12, seed ^ i, RunPolicy::FailFast)),
            1 => Box::new(mc_campaign(
                8,
                seed.rotate_left(1) ^ i,
                RunPolicy::BestEffort { min_fraction: 0.0 },
            )),
            // Synthetic flaky work exercising the retry ladder.
            _ => Box::new(Flaky {
                failures: (i % 4) as u32,
            }),
        };
        match s.submit(spec, campaign) {
            Ok(id) => admitted.push(id),
            Err(e) => {
                assert!(
                    matches!(
                        e,
                        Overloaded::QueueFull { .. } | Overloaded::CostBudget { .. }
                    ),
                    "admission rejections are typed overloads, got {e}"
                );
                rejected += 1;
            }
        }
    }
    (admitted, rejected)
}

/// Per-campaign projection: (id, attempts, preemptions, retry schedule,
/// status discriminant).
type ReportShape = (u64, u32, u32, Vec<Duration>, u8);

/// The deterministic half of a run, projected for cross-thread-count
/// comparison.
fn deterministic_shape(run: &SchedRun) -> (Vec<u64>, Vec<ReportShape>) {
    let counters = [
        "sched.admitted",
        "sched.rejected",
        "sched.completed",
        "sched.shed",
        "sched.preempted",
        "sched.retries",
        "sched.failed",
        "sched.breaker_trips",
        "sched.deadline_expired",
    ]
    .iter()
    .map(|k| run.metrics.counter(k))
    .collect();
    let shape = run
        .reports
        .iter()
        .map(|r| {
            (
                r.id,
                r.attempts,
                r.preemptions,
                r.retry_schedule.clone(),
                match &r.status {
                    CampaignStatus::Completed(_) => 0u8,
                    CampaignStatus::Rejected(_) => 1,
                    CampaignStatus::Preempted { .. } => 2,
                    CampaignStatus::Failed { .. } => 3,
                },
            )
        })
        .collect();
    (counters, shape)
}

fn run_workload(threads: usize, seed: u64) -> (SchedRun, Vec<u64>, usize) {
    let mut s = Scheduler::new(overload_cfg(seed));
    let (admitted, rejected) = submit_workload(&mut s, seed);
    let run = s.run(threads);
    (run, admitted, rejected)
}

#[test]
fn overloaded_mixed_workload_terminates_cleanly() {
    let seed = chaos_seed();
    let (mut run, admitted, rejected) = run_workload(8, seed);

    assert!(rejected >= 1, "the injected queue-full fault must reject");
    assert_eq!(run.reports.len(), admitted.len());

    // Termination taxonomy: every admitted campaign lands in exactly one
    // arm; nothing is left waiting or running.
    let mut resumable_ids = Vec::new();
    for r in &run.reports {
        match &r.status {
            CampaignStatus::Completed(out) => {
                // Completed Monte Carlo campaigns carry estimates unless
                // everything was shed into a best-effort partial.
                if out.report.shed == 0 && out.report.succeeded > 0 {
                    assert!(out.value.is_some());
                }
            }
            CampaignStatus::Rejected(o) => {
                assert!(!o.to_string().is_empty(), "typed rejection renders");
            }
            CampaignStatus::Preempted { resumable } => {
                assert!(*resumable, "mid-run shed campaigns keep checkpoints");
                resumable_ids.push(r.id);
            }
            CampaignStatus::Failed { message } => {
                assert!(!message.is_empty());
            }
        }
    }

    // The deterministic counters account for every admitted campaign.
    let m = &run.metrics;
    assert_eq!(m.counter("sched.admitted"), admitted.len() as u64);
    assert_eq!(
        m.counter("sched.completed")
            + m.counter("sched.failed")
            + m.counter("sched.shed")
            + m.counter("sched.deadline_expired"),
        admitted.len() as u64,
        "taxonomy sums to the admitted count (preempted campaigns re-queue and land elsewhere)"
    );

    // A shed-but-resumable campaign resumes and finishes.
    for id in resumable_ids {
        let c = run.reclaim(id).expect("resumable campaign reclaims");
        let mut s2 = Scheduler::new(SchedConfig::default());
        let id2 = s2.submit(CampaignSpec::new("resume", "shed"), c).unwrap();
        let run2 = s2.run(2);
        assert!(
            matches!(
                run2.report(id2).unwrap().status,
                CampaignStatus::Completed(_)
            ),
            "reclaimed campaign completes from its checkpoint"
        );
    }
}

#[test]
fn deterministic_half_is_identical_across_thread_counts() {
    let seed = chaos_seed();
    let (run1, _, rej1) = run_workload(1, seed);
    let (run2, _, rej2) = run_workload(2, seed);
    let (run8, _, rej8) = run_workload(8, seed);

    assert_eq!(rej1, rej2);
    assert_eq!(rej1, rej8);
    let s1 = deterministic_shape(&run1);
    assert_eq!(s1, deterministic_shape(&run2), "1 vs 2 workers");
    assert_eq!(s1, deterministic_shape(&run8), "1 vs 8 workers");
}

#[test]
fn completed_estimates_are_thread_count_invariant() {
    let seed = chaos_seed();
    let (run1, _, _) = run_workload(1, seed);
    let (run8, _, _) = run_workload(8, seed);
    for (a, b) in run1.reports.iter().zip(run8.reports.iter()) {
        assert_eq!(a.id, b.id);
        if let (CampaignStatus::Completed(x), CampaignStatus::Completed(y)) = (&a.status, &b.status)
        {
            assert_eq!(x.value, y.value, "campaign {} estimate differs", a.id);
            assert_eq!(
                x.report.succeeded, y.report.succeeded,
                "campaign {} ledger differs",
                a.id
            );
        }
    }
}

#[test]
fn stalled_worker_does_not_wedge_the_pool() {
    // Every campaign stalls: with 2 workers and 6 stalled campaigns the
    // pool still drains, bounded only by the stall budget.
    let mut faults = FaultPlan::new();
    for id in 0..6 {
        faults = faults.stall_worker(id);
    }
    let mut s = Scheduler::new(SchedConfig {
        stall_ms: 10,
        faults: Some(faults),
        ..SchedConfig::default()
    });
    let mut ids = Vec::new();
    for i in 0..6u32 {
        ids.push(
            s.submit(
                CampaignSpec::new("t", format!("stall{i}")),
                Box::new(Flaky { failures: 0 }),
            )
            .unwrap(),
        );
    }
    let run = s.run(2);
    for id in ids {
        assert!(matches!(
            run.report(id).unwrap().status,
            CampaignStatus::Completed(_)
        ));
    }
}
