//! Differential property suite for the paged storage backend.
//!
//! The all-in-RAM row backend is the oracle: for every plan in the query
//! corpus (the same families `mcdb_properties.rs` and `sql_robustness.rs`
//! drive through the two executors), a paged twin of the catalog —
//! every table rewritten as an `MDETAB01` file read back through a
//! deliberately tiny buffer pool — must return bit-identical results.
//! A third twin forces Grace spilling of join builds and group-by hash
//! tables and must still match exactly, because partition assignment is
//! deterministic and per-group accumulation order is preserved.

use model_data_ecosystems::mcdb::expr::ScalarFunc;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::{AggFunc, AggSpec, SortKey};
use model_data_ecosystems::mcdb::sql::plan_from_sql;
use model_data_ecosystems::mcdb::storage::{BufferPool, SpillConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static TWIN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write a paged twin of `db` under a fresh temp dir with a small pool;
/// optionally force spilling. Returns the twin and its directory (caller
/// removes it).
fn paged_twin(
    db: &Catalog,
    frames: usize,
    page_size: usize,
    spill_threshold: Option<usize>,
) -> (Catalog, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "mde_sdiff_{}_{}",
        std::process::id(),
        TWIN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let pool = BufferPool::new(frames);
    let mut paged = db.to_paged(&dir, page_size, pool).unwrap();
    if let Some(threshold_rows) = spill_threshold {
        paged.set_spill_config(SpillConfig {
            threshold_rows,
            partitions: 5,
            dir: Some(dir.clone()),
            page_size,
            ..SpillConfig::default()
        });
    }
    (paged, dir)
}

/// Oracle vs paged on one plan. `exact_errors` additionally pins error
/// messages (valid whenever execution order is identical, i.e. the
/// unspilled paged path; spilled runs may hit the first bad value in a
/// different partition order, so there only the failure status is pinned).
fn assert_twin_agrees(db: &Catalog, paged: &Catalog, plan: &Plan, exact_errors: bool) {
    match (db.query(plan), paged.query(plan)) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.schema(),
                b.schema(),
                "schema diverged for {}",
                plan.explain()
            );
            assert_eq!(a.rows(), b.rows(), "rows diverged for {}", plan.explain());
        }
        (Err(a), Err(b)) => {
            if exact_errors {
                assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "errors diverged for {}",
                    plan.explain()
                );
            }
        }
        (a, b) => panic!(
            "status diverged for {}: mem={:?} paged={:?}",
            plan.explain(),
            a.map(|t| t.len()),
            b.map(|t| t.len())
        ),
    }
}

/// Same catalog of semantic edge cases `mcdb_properties.rs` uses: NULLs
/// sprinkled into join/group keys and values.
fn edge_catalog(n_rows: usize, null_every: usize) -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build(
            "FACT",
            &[
                ("K", DataType::Int),
                ("V", DataType::Float),
                ("Q", DataType::Int),
            ],
        )
        .rows((0..n_rows).map(|i| {
            let k = if i % null_every == 0 {
                Value::Null
            } else {
                Value::from((i % 5) as i64)
            };
            let v = if i % (null_every + 2) == 0 {
                Value::Null
            } else {
                Value::from(i as f64 - 7.5)
            };
            vec![k, v, Value::from(i as i64 - 3)]
        }))
        .finish()
        .unwrap(),
    );
    db.insert(
        Table::build("DIM", &[("K", DataType::Int), ("LABEL", DataType::Str)])
            .rows((0..4).map(|j| {
                let k = if j == 0 {
                    Value::Null
                } else {
                    Value::from(j as i64)
                };
                vec![k, Value::from(["none", "lo", "mid", "hi"][j])]
            }))
            .finish()
            .unwrap(),
    );
    db
}

/// Same edge-case plan family as `mcdb_properties.rs`.
fn edge_plan_for(case: u8, divisor: i64, threshold: f64, limit: usize) -> Plan {
    match case % 6 {
        0 => Plan::scan("FACT")
            .join(Plan::scan("DIM"), &[("K", "K")])
            .filter(Expr::col("V").gt(Expr::lit(threshold))),
        1 => Plan::scan("FACT")
            .project(&[
                ("K", Expr::col("K")),
                ("RATIO", Expr::col("Q").div(Expr::lit(divisor))),
            ])
            .filter(Expr::col("RATIO").ge(Expr::lit(0))),
        2 => Plan::scan("FACT").aggregate(
            &["K"],
            vec![
                AggSpec::count_star("N"),
                AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("V")),
                AggSpec::new("PEAK", AggFunc::Max, Expr::col("Q")),
            ],
        ),
        3 => Plan::scan("FACT").filter(
            Expr::col("V")
                .gt(Expr::lit(threshold))
                .or(Expr::col("K").is_null())
                .and(Expr::col("Q").ne(Expr::lit(divisor))),
        ),
        4 => Plan::scan("FACT")
            .project(&[
                ("K", Expr::col("K")),
                ("ROOT", Expr::col("V").func(ScalarFunc::Sqrt)),
            ])
            .sort(vec![SortKey::asc(Expr::col("ROOT"))])
            .limit(limit),
        _ => Plan::scan("FACT")
            .filter(Expr::col("Q").mul(Expr::lit(3)).le(Expr::lit(divisor * 7)))
            .sort(vec![SortKey::desc(Expr::col("V"))])
            .limit(limit),
    }
}

/// The `sql_robustness.rs` base catalog for its generated SQL family.
fn sql_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert(
        Table::build(
            "t",
            &[
                ("a", DataType::Int),
                ("b", DataType::Float),
                ("s", DataType::Str),
            ],
        )
        .rows((0..7).map(|i| {
            vec![
                Value::from(i),
                Value::from(i as f64 * 1.5),
                Value::from(["x", "y"][i as usize % 2]),
            ]
        }))
        .finish()
        .unwrap(),
    );
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Paged twin, tiny pool (4 frames, 256-byte pages → many evictions):
    /// bit-identical to the in-memory oracle on the full edge-plan
    /// family, including identical error messages.
    #[test]
    fn paged_catalog_matches_memory_oracle_on_edge_plans(
        n_rows in 0usize..40,
        null_every in 1usize..5,
        divisor in -2i64..3,
        threshold in -10.0f64..10.0,
        case in 0u8..6,
        limit in 1usize..12,
    ) {
        let db = edge_catalog(n_rows, null_every);
        let (paged, dir) = paged_twin(&db, 4, 256, None);
        let plan = edge_plan_for(case, divisor, threshold, limit);
        assert_twin_agrees(&db, &paged, &plan, true);
        drop(paged);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Spill-forced paged twin: joins and group-bys degrade to Grace
    /// partitioning (threshold 8 rows) and must still match exactly.
    #[test]
    fn spilled_paged_catalog_matches_memory_oracle(
        n_rows in 0usize..40,
        null_every in 1usize..5,
        divisor in -2i64..3,
        threshold in -10.0f64..10.0,
        case in 0u8..6,
        limit in 1usize..12,
    ) {
        let db = edge_catalog(n_rows, null_every);
        let (paged, dir) = paged_twin(&db, 4, 256, Some(8));
        let plan = edge_plan_for(case, divisor, threshold, limit);
        assert_twin_agrees(&db, &paged, &plan, false);
        drop(paged);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The generated-SQL family from `sql_robustness.rs`, executed on
    /// both backends through the SQL front end.
    #[test]
    fn generated_sql_identical_on_paged_catalog(
        threshold in -5i64..15,
        divisor in -3i64..4,
        pick_col in 0usize..3,
        desc in any::<bool>(),
        limit in 1usize..10,
    ) {
        let col = ["a", "b", "s"][pick_col];
        let sql = format!(
            "SELECT a, b / {divisor} AS r FROM t WHERE {col} <> '{threshold}' ORDER BY b {} LIMIT {limit}",
            if desc { "DESC" } else { "ASC" },
        );
        if let Ok(plan) = plan_from_sql(&sql) {
            let db = sql_catalog();
            let (paged, dir) = paged_twin(&db, 4, 256, None);
            assert_twin_agrees(&db, &paged, &plan, true);
            // The legacy row engine materializes paged rows through the
            // oracle path; it must agree too.
            match (db.query_unoptimized(&plan), paged.query_unoptimized(&plan)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.rows(), b.rows(), "sql: {}", sql),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "row-engine status divergence for {}: mem={:?} paged={:?}",
                    sql, a.map(|t| t.len()), b.map(|t| t.len())
                ),
            }
            drop(paged);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Appending after paging: tail rows splice onto the on-disk base and
/// both backends keep agreeing, across all operators.
#[test]
fn paged_append_tail_stays_differential() {
    let mut db = edge_catalog(25, 3);
    let (mut paged, dir) = paged_twin(&db, 4, 256, None);
    // Append identical rows to FACT on both sides (paged side goes to
    // the in-memory tail).
    let extra: Vec<Vec<Value>> = (0..9)
        .map(|i| {
            vec![
                Value::from(i % 4),
                Value::from(i as f64 * 0.5 - 1.0),
                Value::from(i),
            ]
        })
        .collect();
    for cat in [&mut db, &mut paged] {
        let mut fact = cat.remove("FACT").unwrap();
        for r in &extra {
            fact.push_row(r.clone()).unwrap();
        }
        cat.insert(fact);
    }
    assert!(paged.get("FACT").unwrap().is_paged());
    for case in 0..6 {
        let plan = edge_plan_for(case, 2, 0.5, 7);
        assert_twin_agrees(&db, &paged, &plan, true);
    }
    drop(paged);
    std::fs::remove_dir_all(&dir).ok();
}

/// Logical page reads are deterministic: repeating the same query on the
/// same paged catalog advances the per-store counter by the same amount
/// every time, regardless of pool hits or evictions.
#[test]
fn logical_page_reads_are_deterministic() {
    let db = edge_catalog(60, 4);
    let (paged, dir) = paged_twin(&db, 2, 256, None);
    let plan = edge_plan_for(0, 1, -1.0, 10);
    let store = Arc::clone(paged.get("FACT").unwrap().paged_store().unwrap());
    let before = store.logical_reads();
    paged.query(&plan).unwrap();
    let per_query = store.logical_reads() - before;
    assert!(per_query > 0, "a paged scan must read pages");
    for _ in 0..3 {
        let at = store.logical_reads();
        paged.query(&plan).unwrap();
        assert_eq!(store.logical_reads() - at, per_query);
    }
    // The pool, by contrast, reports timing-dependent reuse out-of-band.
    let stats = store.pool().stats();
    assert_eq!(
        stats.hits + stats.misses,
        store.logical_reads() + {
            // DIM's reads went through the same pool.
            let dim = paged.get("DIM").unwrap().paged_store().unwrap();
            dim.logical_reads()
        }
    );
    drop(paged);
    std::fs::remove_dir_all(&dir).ok();
}

/// Buffer-pool pressure gates scheduler admission end to end: a pool
/// filled by paged scans pushes `pressure()` to 1.0, and a scheduler
/// configured with that probe rejects new campaigns with the typed
/// `Overloaded::PoolPressure` until the limit allows them.
#[test]
fn pool_pressure_gates_scheduler_admission() {
    use mde_core::resilience::{
        CampaignCtl, CampaignError, CampaignOutput, CampaignStep, Overloaded, RunReport,
    };
    use mde_core::sched::{CampaignSpec, PressureProbe, SchedConfig, Scheduler};
    use mde_numeric::resilience::sched::Campaign;

    struct Noop;
    impl Campaign for Noop {
        fn run(&mut self, _ctl: &CampaignCtl) -> Result<CampaignStep, CampaignError> {
            Ok(CampaignStep::Done(CampaignOutput {
                value: Some(0.0),
                report: RunReport::new(),
            }))
        }
    }

    let db = edge_catalog(60, 4);
    let (paged, dir) = paged_twin(&db, 3, 256, None);
    let pool = Arc::clone(paged.get("FACT").unwrap().paged_store().unwrap().pool());
    // Fill the pool: one full scan leaves every frame slot resident.
    paged.query(&Plan::scan("FACT")).unwrap();
    assert!(pool.pressure() >= 1.0 - f64::EPSILON);

    let probe_pool = Arc::clone(&pool);
    let mut sched = Scheduler::new(SchedConfig {
        pressure_probe: Some(PressureProbe::new(move || probe_pool.pressure())),
        pressure_limit: 0.5,
        ..SchedConfig::default()
    });
    let err = sched
        .submit(CampaignSpec::new("storage", "probe-gated"), Box::new(Noop))
        .expect_err("full pool must gate admission");
    assert!(matches!(err, Overloaded::PoolPressure { .. }), "{err}");

    // With the limit above current occupancy, the same submission lands.
    let mut relaxed = Scheduler::new(SchedConfig {
        pressure_probe: Some(PressureProbe::new(move || pool.pressure())),
        pressure_limit: 1.5,
        ..SchedConfig::default()
    });
    relaxed
        .submit(CampaignSpec::new("storage", "probe-open"), Box::new(Noop))
        .expect("relaxed limit admits");
    drop(paged);
    std::fs::remove_dir_all(&dir).ok();
}
