//! Cross-crate simulation integration: the SimSQL ABS-in-the-database
//! path, the Indemics split, and assimilation over the wildfire model.

use model_data_ecosystems::abs::epidemic::{
    run_with_policy, EpidemicConfig, EpidemicModel, Intervention,
};
use model_data_ecosystems::assim::pf::{BootstrapProposal, ParticleFilter, StateSpaceModel};
use model_data_ecosystems::assim::wildfire::default_scenario;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::AggSpec;
use model_data_ecosystems::mcdb::simstep::SelfJoinSim;
use model_data_ecosystems::numeric::rng::rng_from_seed;
use std::sync::Arc;

/// The Wang-et-al path: an epidemic step executed as a self-join over an
/// agent table, queried with SQL between steps — SimSQL's "massive
/// stochastic ABS inside the database".
#[test]
fn abs_as_self_join_epidemic_with_sql_observation() {
    // Agents on a 1-D cell line; infection spreads to adjacent cells with
    // certainty (deterministic, so the front is exactly checkable by SQL).
    let agents = Table::build(
        "AGENTS",
        &[
            ("ID", DataType::Int),
            ("CELL", DataType::Int),
            ("SICK", DataType::Bool),
        ],
    )
    .rows((0..50).map(|i| {
        vec![
            Value::from(i),
            Value::from(i / 2), // two agents per cell
            Value::from(i == 0),
        ]
    }))
    .finish()
    .unwrap();

    let sim = SelfJoinSim::new(
        "CELL",
        |k: &Value| {
            let c = k.as_i64().expect("int key");
            vec![Value::Int(c - 1), Value::Int(c + 1)]
        },
        Arc::new(
            |agent: &Vec<Value>,
             neighbors: &[&Vec<Value>],
             _rng: &mut model_data_ecosystems::numeric::rng::Rng| {
                let sick = agent[2].as_bool()?;
                let exposure = neighbors.iter().any(|n| n[2].as_bool().unwrap_or(false));
                Ok(vec![
                    agent[0].clone(),
                    agent[1].clone(),
                    Value::Bool(sick || exposure),
                ])
            },
        ),
    )
    .with_threads(4);

    let states = sim.run(agents, 5, 99).unwrap();
    // Observe each step with SQL: count sick agents.
    let counts: Vec<i64> = states
        .iter()
        .map(|t| {
            let mut cat = Catalog::new();
            cat.insert(t.clone());
            cat.query(
                &Plan::scan("AGENTS")
                    .filter(Expr::col("SICK").eq(Expr::lit(true)))
                    .aggregate(&[], vec![AggSpec::count_star("N")]),
            )
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap()
        })
        .collect();
    // Front advances one cell (2 agents) per step after the first, plus
    // the second agent of cell 0 at step 1: 1, 4, 6, 8, 10, 12.
    assert_eq!(counts[0], 1);
    assert_eq!(counts[1], 4);
    for w in counts.windows(2).skip(1) {
        assert_eq!(w[1] - w[0], 2);
    }
}

/// The Indemics division of labor under quarantine interventions: SQL
/// selects the intervention subset, the HPC engine applies it.
#[test]
fn quarantine_policy_reduces_attack_rate() {
    let cfg = EpidemicConfig {
        transmission_rate: 0.06,
        initial_infected: 8,
        ..EpidemicConfig::default()
    };
    let run = |quarantine: bool, seed: u64| {
        let mut m = EpidemicModel::synthetic(cfg, 800, seed);
        run_with_policy(&mut m, 80, seed ^ 3, |catalog, _day| {
            if !quarantine {
                return vec![];
            }
            // Quarantine every currently infected person (test & trace).
            let pids: Vec<i64> = catalog
                .query(&Plan::scan("InfectedPerson"))
                .unwrap()
                .column("pid")
                .unwrap()
                .iter()
                .map(|v| v.as_i64().unwrap())
                .collect();
            vec![Intervention::Quarantine(pids)]
        })
        .unwrap();
        m.attack_rate()
    };
    let mut base = 0.0;
    let mut quar = 0.0;
    for s in 0..3 {
        base += run(false, 10 + s);
        quar += run(true, 10 + s);
    }
    assert!(
        quar < base * 0.8,
        "quarantine did not reduce attack rate: {base} vs {quar}"
    );
}

/// Data assimilation end-to-end on the wildfire model: the filter's
/// burning-count estimate tracks truth within a reasonable band while the
/// raw model drifts.
#[test]
fn wildfire_filter_tracks_truth() {
    let model = default_scenario();
    let mut rng = rng_from_seed(77);
    let (truth, obs) = model.simulate_truth(12, &mut rng);
    let pf = ParticleFilter::new(150, 5);
    let steps = pf.run(&model, &BootstrapProposal, &obs);
    let mut total_err = 0.0;
    for (s, t) in steps.iter().zip(&truth) {
        total_err += (s.estimate(|x| x.burning_count() as f64) - t.burning_count() as f64).abs();
    }
    let mean_err = total_err / truth.len() as f64;
    let mean_truth: f64 =
        truth.iter().map(|t| t.burning_count() as f64).sum::<f64>() / truth.len() as f64;
    assert!(
        mean_err < mean_truth * 0.5,
        "mean error {mean_err} vs mean truth {mean_truth}"
    );
    // Also verify the open-loop (no assimilation) baseline is worse — the
    // §3.2 headline.
    let mut open_rng = rng_from_seed(6);
    let mut open: Vec<_> = (0..150)
        .map(|_| model.sample_initial(&mut open_rng))
        .collect();
    let mut open_err = 0.0;
    for (t, tru) in truth.iter().enumerate() {
        if t > 0 {
            open = open
                .iter()
                .map(|s| model.sample_transition(s, &mut open_rng))
                .collect();
        }
        let est = open.iter().map(|s| s.burning_count() as f64).sum::<f64>() / 150.0;
        open_err += (est - tru.burning_count() as f64).abs();
    }
    assert!(
        total_err < open_err,
        "PF ({total_err}) should beat open loop ({open_err})"
    );
}
