//! Differential + chaos suite for the content-addressed result cache.
//!
//! Contract under test (DESIGN.md §6h): a cache hit is bit-identical to a
//! recompute — samples, deterministic report ledger, resumable final
//! state — at every thread count, under fault injection and retries; a
//! key that differs in any component (spec fingerprint, parameter point,
//! replicate count, master seed) never hits; and a corrupt cache file is
//! always a typed error or a transparent recompute, never a wrong answer.
//!
//! Corruption placement is keyed off `MDE_CHAOS_SEED` (CI runs a small
//! matrix) but is fully deterministic for a given seed.

use model_data_ecosystems::mcdb::mc::MonteCarloQuery;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::AggSpec;
use model_data_ecosystems::mcdb::vg::NormalVg;
use model_data_ecosystems::mcdb::{RunOptions, RunPolicy};
use model_data_ecosystems::numeric::cache::{
    CacheError, CacheHandle, CacheKey, ObjectiveScope, ResultCache, DEFAULT_MAX_BYTES,
};
use model_data_ecosystems::numeric::resilience::{FaultKind, FaultPlan};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Deterministic LCG so the corruption schedule is a pure function of
/// the chaos seed.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

static FIXTURE_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mde_cchaos_{}_{}",
        std::process::id(),
        FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn demand_catalog() -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int)])
            .rows((0..20).map(|i| vec![Value::from(i)]))
            .finish()
            .unwrap(),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(10.0), Value::from(2.0)])
        .finish()
        .unwrap(),
    );
    db
}

fn revenue_query() -> MonteCarloQuery {
    let spec = RandomTableSpec::builder("SALES")
        .for_each(Plan::scan("ITEMS"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_query(Plan::scan("PARAMS"))
        .select(&[("IID", Expr::col("IID")), ("AMT", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let q = Plan::scan("SALES").aggregate(
        &[],
        vec![AggSpec::new(
            "TOTAL",
            AggFunc::Sum,
            Expr::col("AMT"),
        )],
    );
    MonteCarloQuery::new(vec![spec], q)
}

/// A retry policy plus a fault plan that panics two replicates on their
/// first attempt — the supervised path the cache must replay exactly.
fn faulty_opts() -> RunOptions {
    RunOptions::policy(RunPolicy::Retry { max_attempts: 3, reseed: true }).with_faults(
        FaultPlan::new()
            .fail_on(3, 0, FaultKind::Panic)
            .fail_on(11, 0, FaultKind::Error),
    )
}

const N: usize = 60;
const SEED: u64 = 42;

#[test]
fn cache_hit_is_bit_identical_to_recompute_across_thread_counts() {
    let db = demand_catalog();
    let task = revenue_query();
    let opts = faulty_opts();

    // Ground truth: an uncached supervised run (faults + retries active).
    let base = task.run_with_options(&db, N, SEED, &opts).unwrap();
    assert!(!base.report.failures.is_empty(), "faults must have fired");

    // Cold cached run computes and stores; it must already equal truth.
    let cache = CacheHandle::in_memory();
    let cached_opts = opts.clone().with_cache(cache.clone());
    let cold = task.run_with_options(&db, N, SEED, &cached_opts).unwrap();
    assert_eq!(base.result, cold.result);
    assert_eq!(base.report, cold.report);
    assert_eq!(cache.stats().hits, 0);

    // Warm runs replay the entry at every thread count, bit-identically:
    // samples, the deterministic report ledger, and the resumable state.
    for threads in [1usize, 2, 8] {
        let warm = task
            .run_parallel_with_options(&db, N, SEED, threads, &cached_opts)
            .unwrap();
        assert_eq!(base.result, warm.result, "threads = {threads}");
        assert_eq!(base.report, warm.report, "threads = {threads}");
        let state = warm.checkpoint.expect("replay carries final state");
        assert_eq!(state.cursor, N as u64);
        assert_eq!(state.completed.len(), base.result.n());
    }
    let stats = cache.stats();
    assert_eq!(stats.hits, 3, "each warm run is exactly one hit");
    assert_eq!(stats.misses, 1, "only the cold run missed");
}

#[test]
fn sequential_and_parallel_runs_share_one_entry() {
    let db = demand_catalog();
    let task = revenue_query();
    let cache = CacheHandle::in_memory();
    let opts = RunOptions::default().with_cache(cache.clone());

    // A parallel run computes the entry; a sequential run replays it
    // (the key deliberately excludes the thread count).
    let par = task
        .run_parallel_with_options(&db, N, SEED, 8, &opts)
        .unwrap();
    let seq = task.run_with_options(&db, N, SEED, &opts).unwrap();
    assert_eq!(par.result, seq.result);
    assert_eq!(par.report, seq.report);
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
}

#[test]
fn foreign_fingerprint_and_stale_seed_never_hit() {
    let db = demand_catalog();
    let task = revenue_query();
    let cache = CacheHandle::in_memory();
    let opts = RunOptions::default().with_cache(cache.clone());
    task.run_with_options(&db, N, SEED, &opts).unwrap();
    assert_eq!(cache.stats().entries, 1);

    // Stale seed: same campaign, different master seed — a miss.
    task.run_with_options(&db, N, SEED + 1, &opts).unwrap();
    // Different n: a foreign fingerprint (n is folded into the spec) — miss.
    task.run_with_options(&db, N - 1, SEED, &opts).unwrap();
    // Different supervision policy: result bits could differ — miss.
    let retry_opts = RunOptions::policy(RunPolicy::Retry { max_attempts: 2, reseed: true })
        .with_cache(cache.clone());
    task.run_with_options(&db, N, SEED, &retry_opts).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.hits, 0, "no foreign key may hit");
    assert_eq!(stats.misses, 4);
    assert_eq!(stats.entries, 4);

    // The exact original key still replays.
    task.run_with_options(&db, N, SEED, &opts).unwrap();
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn durable_cache_survives_reopen_and_replays_bit_identically() {
    let dir = scratch_dir();
    let path = dir.join("results.mdecache");
    let db = demand_catalog();
    let task = revenue_query();
    let opts = faulty_opts();
    let base = task.run_with_options(&db, N, SEED, &opts).unwrap();

    {
        let (cache, dropped) = CacheHandle::open_or_recover(&path, DEFAULT_MAX_BYTES).unwrap();
        assert_eq!(dropped, 0);
        let cached_opts = opts.clone().with_cache(cache);
        task.run_with_options(&db, N, SEED, &cached_opts).unwrap();
    }
    assert!(path.exists(), "insert_durable must persist the image");

    // A fresh process (fresh handle) replays from disk without computing.
    let (cache, dropped) = CacheHandle::open_or_recover(&path, DEFAULT_MAX_BYTES).unwrap();
    assert_eq!(dropped, 0);
    let cached_opts = opts.clone().with_cache(cache.clone());
    let warm = task
        .run_parallel_with_options(&db, N, SEED, 4, &cached_opts)
        .unwrap();
    assert_eq!(base.result, warm.result);
    assert_eq!(base.report, warm.report);
    assert_eq!(cache.stats().hits, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Count replicate executions so chaos tests can distinguish "replayed"
/// from "recomputed" without trusting the cache's own counters.
fn instrumented_scope(cache: &CacheHandle, seed: u64) -> ObjectiveScope {
    ObjectiveScope::new(cache.clone(), "chaos.probe", 0x5EED, 1, seed)
}

#[test]
fn chaos_bit_flips_are_typed_errors_or_transparent_recomputes() {
    let dir = scratch_dir();
    let path = dir.join("flip.mdecache");
    let evals = Arc::new(AtomicUsize::new(0));

    // Populate a small durable cache through the objective-scope path.
    let truth: Vec<f64> = {
        let (cache, _) = CacheHandle::open_or_recover(&path, DEFAULT_MAX_BYTES).unwrap();
        let mut scope = instrumented_scope(&cache, 9);
        let truth = (0..6)
            .map(|i| {
                let evals = Arc::clone(&evals);
                scope.memoize_scalar(&[i as f64, (i * i) as f64], || {
                    evals.fetch_add(1, Ordering::Relaxed);
                    (i as f64).sin() * 100.0
                })
            })
            .collect();
        cache.persist().unwrap();
        truth
    };
    assert_eq!(evals.load(Ordering::Relaxed), 6);
    let pristine = std::fs::read(&path).unwrap();

    let mut rng = chaos_seed();
    for round in 0..16 {
        // Flip one random byte (never in the magic, which is its own case).
        let mut bytes = pristine.clone();
        let at = 9 + (next(&mut rng) as usize) % (bytes.len() - 9);
        let bit = 1u8 << (next(&mut rng) % 8) as u8;
        bytes[at] ^= bit;
        std::fs::write(&path, &bytes).unwrap();

        // Strict open: a typed error, or a cache that dropped the damage.
        match ResultCache::open(&path, DEFAULT_MAX_BYTES) {
            Ok(cache) => {
                // The flip landed in slack the checksum does not govern
                // (e.g. the entry-count suffix of a short file is
                // impossible — count mismatches are framing errors), so
                // every surviving entry must still be verifiable.
                assert_eq!(cache.stats().entries, 6, "round {round}");
            }
            Err(
                CacheError::Corrupt { .. }
                | CacheError::ChecksumMismatch { .. }
                | CacheError::KeyMismatch { .. },
            ) => {}
            Err(e) => panic!("round {round}: unexpected error class: {e}"),
        }

        // Recovery open: damaged entries are recomputed, never wrong.
        let before = evals.load(Ordering::Relaxed);
        let (cache, _dropped) = CacheHandle::open_or_recover(&path, DEFAULT_MAX_BYTES).unwrap();
        let mut scope = instrumented_scope(&cache, 9);
        let replayed: Vec<f64> = (0..6)
            .map(|i| {
                let evals = Arc::clone(&evals);
                scope.memoize_scalar(&[i as f64, (i * i) as f64], || {
                    evals.fetch_add(1, Ordering::Relaxed);
                    (i as f64).sin() * 100.0
                })
            })
            .collect();
        assert_eq!(truth, replayed, "round {round}: a flip changed an answer");
        let recomputed = evals.load(Ordering::Relaxed) - before;
        assert!(recomputed <= 6, "round {round}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_truncation_and_torn_writes_recover_the_prefix() {
    let dir = scratch_dir();
    let path = dir.join("torn.mdecache");
    let (cache, _) = CacheHandle::open_or_recover(&path, DEFAULT_MAX_BYTES).unwrap();
    let mut scope = instrumented_scope(&cache, 11);
    let truth: Vec<f64> = (0..5)
        .map(|i| scope.memoize_scalar(&[i as f64], || (i as f64) * 2.5 + 1.0))
        .collect();
    drop(scope);
    cache.persist().unwrap();
    drop(cache);
    let pristine = std::fs::read(&path).unwrap();

    let mut rng = chaos_seed().wrapping_mul(0x9E37_79B9);
    for round in 0..12 {
        let cut = 1 + (next(&mut rng) as usize) % (pristine.len() - 1);
        let mut bytes = pristine[..cut].to_vec();
        if round % 2 == 1 {
            // Torn write: garbage tail instead of clean truncation.
            bytes.extend((0..(next(&mut rng) % 64)).map(|_| next(&mut rng) as u8));
        }
        std::fs::write(&path, &bytes).unwrap();

        // Strict open of a torn file must never succeed with silently
        // missing *verified* entries presented as the full set.
        if let Err(e) = ResultCache::open(&path, DEFAULT_MAX_BYTES) {
            match e {
                CacheError::Corrupt { .. } | CacheError::ChecksumMismatch { .. } => {}
                other => panic!("round {round}: unexpected error: {other}"),
            }
        }

        // Recovery keeps the undamaged prefix and recomputes the rest.
        let (cache, _dropped) = CacheHandle::open_or_recover(&path, DEFAULT_MAX_BYTES).unwrap();
        let mut scope = instrumented_scope(&cache, 11);
        let replayed: Vec<f64> = (0..5)
            .map(|i| scope.memoize_scalar(&[i as f64], || (i as f64) * 2.5 + 1.0))
            .collect();
        assert_eq!(truth, replayed, "round {round}");
    }

    // Degenerate cases: empty file and foreign magic.
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        ResultCache::open(&path, DEFAULT_MAX_BYTES),
        Err(CacheError::Corrupt { .. })
    ));
    std::fs::write(&path, b"NOTACACHE-file").unwrap();
    assert!(matches!(
        ResultCache::open(&path, DEFAULT_MAX_BYTES),
        Err(CacheError::Corrupt { .. })
    ));
    let (empty, _) = ResultCache::open_or_recover(&path, DEFAULT_MAX_BYTES).unwrap();
    assert_eq!(empty.stats().entries, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn provenance_links_campaign_traces_to_their_upstream_entries() {
    let cache = CacheHandle::in_memory();
    let mut scope = instrumented_scope(&cache, 13);
    for i in 0..4 {
        scope.memoize_scalar(&[i as f64], || i as f64 + 0.5);
    }
    // Warm lookups accumulate the upstream hash chain.
    let mut warm = instrumented_scope(&cache, 13);
    for i in 0..4 {
        warm.memoize_scalar(&[i as f64], || unreachable!("must hit"));
    }
    warm.store_trace(vec![1.0, 2.0]);
    let prov = cache
        .provenance_of(&warm.trace_key())
        .expect("trace entry must carry provenance");
    assert_eq!(prov.campaign, "chaos.probe");
    assert_eq!(prov.upstream.len(), 4, "one upstream hash per hit");
    // A foreign key has no provenance.
    assert!(cache
        .provenance_of(&CacheKey::for_campaign(0xDEAD_BEEF, 1, 13))
        .is_none());
}
