//! Wire-level chaos harness for the service front-end.
//!
//! Drives a live `mde-server` with hostile clients — slow-loris
//! dribbles, torn and oversized frames, raw garbage, mid-frame
//! disconnects, injected session panics — interleaved with well-behaved
//! clients, and asserts the robustness contract:
//!
//! * every fault lands as a typed wire error or a clean disconnect,
//! * well-behaved sessions keep getting *bit-identical* answers to the
//!   in-process library throughout the chaos,
//! * the accept loop never hangs (a fresh client always gets served),
//! * a mid-query client disconnect cancels the in-flight work
//!   cooperatively and persists a partial checkpoint that resumes
//!   exactly,
//! * overload rejections surface as retryable typed errors with
//!   deterministic backoff hints,
//! * graceful drain stops in-flight campaigns at boundaries, persists
//!   their checkpoints, and exits without wedging.
//!
//! Fault interleavings derive from `MDE_CHAOS_SEED` (CI sweeps a seed
//! matrix), so a red run replays exactly.

use mde_mcdb::mc::MonteCarloQuery;
use mde_mcdb::prelude::{Catalog, DataType, Table, Value};
use mde_mcdb::sql::{parse_create_random_table, plan_from_sql, VgRegistry};
use mde_server::chaos;
use mde_server::client::{Client, Reply};
use mde_server::{Server, ServerConfig, WireCode, WireFaultPlan};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn chaos_seed() -> u64 {
    std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

const DDL: &str = "CREATE TABLE SALES(IID, AMT) AS FOR EACH ITEMS \
                   WITH Normal(SELECT MEAN, STD FROM PARAMS) \
                   SELECT IID, VALUE AS AMT";
const MC_SQL: &str = "SELECT SUM(AMT) AS V FROM SALES";

fn seed_catalog() -> Catalog {
    let mut db = Catalog::new();
    db.insert(
        Table::build("ITEMS", &[("IID", DataType::Int)])
            .rows((0..8).map(|i| vec![Value::from(i)]))
            .finish()
            .unwrap(),
    );
    db.insert(
        Table::build(
            "PARAMS",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(10.0), Value::from(2.0)])
        .finish()
        .unwrap(),
    );
    db
}

/// The in-process library answer the server must match bit-for-bit.
fn baseline_mean(n: usize, seed: u64) -> f64 {
    let spec = parse_create_random_table(DDL, &VgRegistry::standard()).expect("valid DDL");
    let plan = plan_from_sql(MC_SQL).expect("valid SQL");
    let query = MonteCarloQuery::new(vec![spec], plan);
    query
        .run(&seed_catalog(), n, seed)
        .expect("baseline MC runs")
        .mean()
}

fn wire_mc(client: &mut Client, n: usize, seed: u64) -> f64 {
    let reply = client
        .send(&format!("MC n={n} seed={seed}\n{MC_SQL}"))
        .expect("MC request");
    let map = reply.expect_ok("MC");
    assert_eq!(map["succeeded"], n.to_string());
    map["mean"].parse().expect("mean parses")
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mde-serve-{name}-{}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn connect(server: &Server) -> Client {
    let client = Client::connect(server.addr()).expect("connect");
    client
        .set_reply_timeout(Some(Duration::from_secs(60)))
        .expect("reply timeout");
    client
}

#[test]
fn clean_session_matches_library_bit_for_bit() {
    let server = Server::start(seed_catalog(), ServerConfig::default()).expect("server starts");
    let mut c = connect(&server);
    c.hello("acme").expect("hello").expect_ok("HELLO");

    // Plain SQL over the snapshot.
    match c.sql("SELECT COUNT(*) AS N FROM ITEMS", None).expect("sql") {
        Reply::Table { rows, .. } => assert_eq!(rows, vec![vec!["8".to_string()]]),
        other => panic!("expected table, got {other:?}"),
    }

    // DDL + rows through the wire mutate the shared catalog snapshot.
    c.send("CREATE name=EXTRA cols=ID:int,SCORE:float")
        .expect("create")
        .expect_ok("CREATE");
    let ok = c
        .send("INSERT name=EXTRA\n1\t0.5\n2\t1.5\n3\tNULL")
        .expect("insert")
        .expect_ok("INSERT");
    assert_eq!(ok["rows"], "3");
    match c
        .sql("SELECT COUNT(*) AS N FROM EXTRA WHERE SCORE > 0.0", None)
        .expect("sql over inserted rows")
    {
        Reply::Table { rows, .. } => assert_eq!(rows, vec![vec!["2".to_string()]]),
        other => panic!("expected table, got {other:?}"),
    }

    // Monte Carlo through the wire is bit-identical to the library.
    c.send(&format!("VG\n{DDL}")).expect("vg").expect_ok("VG");
    let seed = chaos_seed();
    let mean = wire_mc(&mut c, 64, seed);
    assert_eq!(mean, baseline_mean(64, seed), "wire MC must match library");

    // Campaign path gives the same estimate.
    let reply = c
        .send(&format!(
            "CAMPAIGN n=64 seed={seed} priority=interactive\n{MC_SQL}"
        ))
        .expect("campaign");
    let map = reply.expect_ok("CAMPAIGN");
    assert_eq!(map["status"], "completed");
    let value: f64 = map["value"].parse().expect("value parses");
    assert_eq!(value, baseline_mean(64, seed), "campaign matches library");

    server.shutdown();
}

#[test]
fn bad_deadlines_and_budgets_are_rejected_at_parse_time() {
    let server = Server::start(seed_catalog(), ServerConfig::default()).expect("server starts");
    let mut c = connect(&server);
    for (req, code) in [
        (
            "SQL deadline_ms=0\nSELECT COUNT(*) AS N FROM ITEMS",
            WireCode::BadDeadline,
        ),
        (
            "SQL deadline_ms=99999999999999999999\nSELECT COUNT(*) AS N FROM ITEMS",
            WireCode::BadDeadline,
        ),
        (
            "MC n=0 seed=1\nSELECT COUNT(*) AS N FROM ITEMS",
            WireCode::BadBudget,
        ),
        (
            "CAMPAIGN n=4 seed=1 cost=0\nSELECT COUNT(*) AS N FROM ITEMS",
            WireCode::BadBudget,
        ),
    ] {
        let err = c.send(req).expect("send").expect_err("bad budget request");
        assert_eq!(err.code, code, "request {req:?}");
        // The session survives a rejected request.
        match c
            .sql("SELECT COUNT(*) AS N FROM ITEMS", Some(5_000))
            .expect("follow-up")
        {
            Reply::Table { rows, .. } => assert_eq!(rows[0][0], "8"),
            other => panic!("session should survive, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn deadline_propagates_into_monte_carlo_boundaries() {
    let server = Server::start(seed_catalog(), ServerConfig::default()).expect("server starts");
    let mut c = connect(&server);
    c.send(&format!("VG\n{DDL}")).expect("vg").expect_ok("VG");
    // A replicate budget this size takes far longer than the deadline;
    // the run must stop at a boundary, typed, with partial progress.
    let reply = c
        .send(&format!("MC n=50000000 seed=3 deadline_ms=200\n{MC_SQL}"))
        .expect("mc");
    let map = reply.expect_ok("deadline-bounded MC");
    assert_eq!(map["stopped"], "deadline");
    let succeeded: usize = map["succeeded"].parse().unwrap();
    assert!(succeeded > 0, "some replicates ran before expiry");
    assert!(succeeded < 50_000_000, "the deadline actually stopped it");
    server.shutdown();
}

#[test]
fn wire_chaos_never_wedges_the_server_or_corrupts_answers() {
    let seed = chaos_seed();
    // Sessions 0 and 1 panic on their second request (the ordinals are
    // claimed below by connecting the panic victims first).
    let faults = WireFaultPlan::new()
        .panic_session_at(0, 1)
        .panic_session_at(1, 1);
    let server = Server::start(
        seed_catalog(),
        ServerConfig {
            idle_timeout: Duration::from_millis(300),
            faults: Some(faults),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    // Panic victims first, sequentially, so they own session ids 0 and 1.
    for victim in 0..2 {
        let mut c = connect(&server);
        c.hello("doomed").expect("hello").expect_ok("HELLO");
        let err = c
            .send("PING")
            .expect("panic reply delivered")
            .expect_err("injected panic");
        assert_eq!(err.code, WireCode::Panic, "victim {victim}");
        assert!(!err.retryable);
        // The panicking session is gone; the socket observes EOF.
        assert!(
            c.send("PING").is_err(),
            "victim {victim}: session must be terminated"
        );
    }

    // Now the storm: hostile clients interleaved with honest ones.
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for i in 0..2 {
        let h = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("loris connects");
            // Dribbles one byte per 60ms against a 300ms read deadline:
            // the server must cut us off, not wait forever.
            chaos::slow_loris(&mut s, "PING", Duration::from_millis(60)).expect("loris tolerated");
        });
        handles.push(h);
        let h = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("torn connects");
            chaos::torn_frame(&mut s, 64, format!("HELLO tenant=torn{i}").as_bytes())
                .expect("torn frame written");
            drop(s);
        });
        handles.push(h);
        let h = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("mid-frame connects");
            chaos::mid_frame_disconnect(&mut s, "SQL\nSELECT COUNT(*) AS N FROM ITEMS", 7)
                .expect("partial frame written");
            drop(s);
        });
        handles.push(h);
    }
    handles.push(std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("oversize connects");
        chaos::oversized_header(&mut s, u32::MAX).expect("oversize header written");
    }));
    handles.push(std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("garbage connects");
        chaos::garbage_bytes(&mut s, b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n").expect("garbage");
    }));

    // Honest clients demand exact answers all the way through the storm.
    for worker in 0..3 {
        let h = std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("honest client connects");
            c.set_reply_timeout(Some(Duration::from_secs(60))).unwrap();
            c.hello(&format!("honest{worker}"))
                .unwrap()
                .expect_ok("HELLO");
            c.send(&format!("VG\n{DDL}")).unwrap().expect_ok("VG");
            for round in 0..3u64 {
                let n = 32 + 16 * round as usize;
                let mc_seed = seed ^ (worker as u64) << 8 | round;
                let reply = c
                    .send(&format!("MC n={n} seed={mc_seed}\n{MC_SQL}"))
                    .expect("MC during chaos");
                let map = reply.expect_ok("MC during chaos");
                let mean: f64 = map["mean"].parse().unwrap();
                assert_eq!(
                    mean,
                    baseline_mean(n, mc_seed),
                    "worker {worker} round {round}: wrong answer under chaos"
                );
            }
        });
        handles.push(h);
    }

    for h in handles {
        h.join().expect("chaos thread");
    }

    // The accept loop is alive and a fresh session computes correctly.
    let mut c = connect(&server);
    match c
        .sql("SELECT COUNT(*) AS N FROM ITEMS", None)
        .expect("post-chaos SQL")
    {
        Reply::Table { rows, .. } => assert_eq!(rows[0][0], "8"),
        other => panic!("post-chaos reply: {other:?}"),
    }
    let stats = c.send("STATS").expect("stats").expect_ok("STATS");
    let panics: u64 = stats["panics"].parse().unwrap();
    let bad_frames: u64 = stats["bad_frames"].parse().unwrap();
    assert_eq!(panics, 2, "both injected panics fired");
    assert!(
        bad_frames >= 5,
        "framing faults were classified (got {bad_frames})"
    );

    let report = server.shutdown();
    assert_eq!(report.panics, 2);
}

#[test]
fn mid_query_disconnect_cancels_and_checkpoints_partial_progress() {
    let dir = scratch_dir("disconnect");
    let server = Server::start(
        seed_catalog(),
        ServerConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let n: usize = 4_000_000;
    let seed = chaos_seed();

    // Fire a long checkpointing MC, then vanish mid-query.
    {
        let mut c = connect(&server);
        c.send(&format!("VG\n{DDL}")).expect("vg").expect_ok("VG");
        c.stream()
            .set_read_timeout(Some(Duration::from_millis(120)))
            .unwrap();
        let _ = c.send(&format!(
            "MC n={n} seed={seed} checkpoint=dropped.ckpt\n{MC_SQL}"
        ));
        // Read timed out (the run is long); drop the socket mid-query.
    }

    // The reader observes the disconnect and cancels the in-flight
    // token; the run seals a partial checkpoint. Poll the server's
    // cancelled counter rather than sleeping blind.
    let mut monitor = connect(&server);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = monitor.send("STATS").expect("stats").expect_ok("STATS");
        if stats["cancelled"].parse::<u64>().unwrap() >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the in-flight MC"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let ckpt = dir.join("dropped.ckpt");
    assert!(ckpt.exists(), "partial run checkpointed on cancellation");
    let state = mde_numeric::CampaignState::load(&ckpt).expect("checkpoint loads");
    assert!(state.cursor > 0, "some replicates completed before the cut");
    assert!(
        (state.cursor as usize) < n,
        "cancellation stopped the run early (cursor {})",
        state.cursor
    );

    // Resuming from the partial checkpoint completes the run and is
    // bit-identical to an uninterrupted one — but finishing 4M
    // replicates takes minutes, so prove it at a smaller scale with the
    // same machinery: interrupt, resume, compare.
    let n_small = 2_000;
    let mut c = connect(&server);
    c.send(&format!("VG\n{DDL}")).expect("vg").expect_ok("VG");
    let reply = c
        .send(&format!(
            "MC n={n_small} seed={seed} deadline_ms=1 checkpoint=resume.ckpt\n{MC_SQL}"
        ))
        .expect("interrupted mc");
    let map = reply.expect_ok("interrupted MC");
    assert_eq!(map["stopped"], "deadline");
    assert_eq!(map["checkpointed"], "1");
    let reply = c
        .send(&format!(
            "MC n={n_small} seed={seed} checkpoint=resume.ckpt\n{MC_SQL}"
        ))
        .expect("resumed mc");
    let map = reply.expect_ok("resumed MC");
    assert_eq!(map["succeeded"], n_small.to_string());
    let mean: f64 = map["mean"].parse().unwrap();
    assert_eq!(
        mean,
        baseline_mean(n_small, seed),
        "resume from a partial checkpoint must be bit-identical"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_rejections_carry_typed_codes_and_retry_hints() {
    let server = Server::start(
        seed_catalog(),
        ServerConfig {
            sched: mde_core::SchedConfig {
                cost_budget: 1,
                ..mde_core::SchedConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    let seed = chaos_seed();

    let mut c = connect(&server);
    c.hello("tenant-b").unwrap().expect_ok("HELLO");
    c.send(&format!("VG\n{DDL}")).unwrap().expect_ok("VG");

    // Deterministic mapping check: a cost above the whole budget is
    // always a typed, retryable rejection with a backoff hint.
    let err = c
        .send(&format!("CAMPAIGN n=16 seed={seed} cost=2\n{MC_SQL}"))
        .expect("oversized campaign")
        .expect_err("cost above budget");
    assert_eq!(err.code, WireCode::CostBudget);
    assert!(err.retryable, "overload must be retryable");
    let first_hint = err.retry_after_ms.expect("deterministic backoff hint");
    assert!(first_hint > 0);
    // Hints are deterministic: the same session's next rejection streak
    // step reproduces from the session fingerprint, not a clock.
    let err2 = c
        .send(&format!("CAMPAIGN n=16 seed={seed} cost=2\n{MC_SQL}"))
        .expect("oversized campaign again")
        .expect_err("cost above budget");
    assert!(err2.retry_after_ms.expect("hint present") >= first_hint);

    // Contention check: session A occupies the budget with a long
    // campaign; B waits until the cost is visibly in flight, gets
    // rejected, and retries per the hint until the budget frees up.
    let a = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("A connects");
        c.set_reply_timeout(Some(Duration::from_secs(120))).unwrap();
        c.hello("tenant-a").unwrap().expect_ok("HELLO");
        c.send(&format!("VG\n{DDL}")).unwrap().expect_ok("VG");
        let reply = c
            .send(&format!("CAMPAIGN n=50000 seed={seed}\n{MC_SQL}"))
            .expect("A campaign");
        let map = reply.expect_ok("A campaign");
        assert_eq!(map["status"], "completed");
    });

    // Wait until A's cost is charged before contending.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = c.send("STATS").expect("stats").expect_ok("STATS");
        if stats["campaigns_inflight_cost"].parse::<u64>().unwrap() >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "A's campaign never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut rejections = 0u32;
    let deadline = Instant::now() + Duration::from_secs(120);
    let map = loop {
        assert!(Instant::now() < deadline, "B never got through");
        let reply = c
            .send(&format!("CAMPAIGN n=16 seed={seed}\n{MC_SQL}"))
            .expect("B campaign");
        match reply {
            Reply::Ok(map) => break map,
            Reply::Err(err) => {
                assert_eq!(err.code, WireCode::CostBudget, "typed overload code");
                assert!(err.retryable);
                let hint = err.retry_after_ms.expect("hint present");
                rejections += 1;
                std::thread::sleep(Duration::from_millis(hint.min(100)));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    };
    assert_eq!(map["status"], "completed");
    assert!(
        rejections >= 1,
        "B should have been rejected at least once while A held the budget"
    );

    a.join().expect("session A");
    server.shutdown();
}

#[test]
fn graceful_drain_preempts_at_boundaries_and_checkpoints() {
    let dir = scratch_dir("drain");
    let server = Server::start(
        seed_catalog(),
        ServerConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    let seed = chaos_seed();

    // A long-running campaign with a checkpoint, in flight when drain
    // begins.
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connects");
        c.set_reply_timeout(Some(Duration::from_secs(60))).unwrap();
        c.send(&format!("VG\n{DDL}")).unwrap().expect_ok("VG");
        let reply = c.send(&format!(
            "CAMPAIGN n=4000000 seed={seed} checkpoint=drained.ckpt\n{MC_SQL}"
        ));
        // Depending on timing the session sees the preempted report or
        // the drain closes the socket first; both are clean outcomes.
        if let Ok(Reply::Ok(map)) = reply {
            assert_eq!(map["status"], "preempted");
            assert_eq!(map["resumable"], "true");
        }
    });

    // Let the campaign get going, then drain.
    std::thread::sleep(Duration::from_millis(400));
    let report = server.shutdown();
    inflight.join().expect("in-flight session thread");

    assert!(report.sessions_closed >= 1);
    let ckpt = dir.join("drained.ckpt");
    assert!(
        ckpt.exists(),
        "drain must persist the in-flight campaign's checkpoint"
    );
    let state = mde_numeric::CampaignState::load(&ckpt).expect("checkpoint loads");
    assert!(
        (state.cursor as usize) < 4_000_000,
        "drain stopped the campaign early"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_server_refuses_new_connections_with_typed_error() {
    let server = Server::start(seed_catalog(), ServerConfig::default()).expect("server starts");
    // A client-requested shutdown flips the drain flag.
    let mut c = connect(&server);
    let ok = c.send("SHUTDOWN").expect("shutdown").expect_ok("SHUTDOWN");
    assert_eq!(ok["draining"], "1");
    assert!(server.shutdown_requested());
    server.shutdown();
}
