//! Page-level chaos suite for the paged storage backend.
//!
//! Contract under test: any corruption of an `MDETAB01` file — random
//! bit flips, truncation, torn (partially overwritten) pages, foreign
//! file magic — surfaces as the typed
//! `McdbError::PageCorrupt` / `McdbError::PageChecksumMismatch` errors,
//! and *never* as a silently wrong answer. Every byte of the file is
//! covered by either the header FNV-1a checksum or a page-frame
//! checksum, so a mutated file must fail to open or fail to decode.
//!
//! Fault placement is keyed off `MDE_CHAOS_SEED` (CI runs a small
//! matrix) but is fully deterministic for a given seed.

use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::batch::Batch;
use model_data_ecosystems::mcdb::storage::BufferPool;
use model_data_ecosystems::mcdb::McdbError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Deterministic LCG (PCG-style multiplier) so the fault schedule is a
/// pure function of the chaos seed.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

static FIXTURE_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mde_schaos_{}_{}",
        std::process::id(),
        FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A table mixing every dtype (so plain, RLE, dictionary, and bit-packed
/// pages all appear) with NULLs sprinkled in.
fn fixture_table(n_rows: usize) -> Table {
    Table::build(
        "T",
        &[
            ("K", DataType::Int),
            ("V", DataType::Float),
            ("TAG", DataType::Str),
            ("OK", DataType::Bool),
        ],
    )
    .rows((0..n_rows).map(|i| {
        vec![
            if i % 11 == 0 {
                Value::Null
            } else {
                Value::from((i % 7) as i64)
            },
            Value::from(i as f64 * 0.25 - 3.0),
            Value::from(["alpha", "beta", "gamma"][i % 3]),
            Value::from(i % 2 == 0),
        ]
    }))
    .finish()
    .unwrap()
}

/// Open `path` through a fresh pool and fully decode it. The error (if
/// any) is what a query against the file would surface.
fn open_and_decode(path: &Path, frames: usize) -> Result<Arc<Batch>, McdbError> {
    let t = Table::open_paged(path, BufferPool::new(frames))?;
    t.try_batch()
}

fn assert_typed_storage_error(err: &McdbError, what: &str) {
    assert!(
        matches!(
            err,
            McdbError::PageCorrupt { .. } | McdbError::PageChecksumMismatch { .. }
        ),
        "{what} must surface a typed page error, got: {err}"
    );
}

/// Random single-bit flips anywhere in the file: every one must be
/// caught by a checksum or structural check — typed error, never a
/// different answer.
#[test]
fn bit_flips_surface_typed_errors_never_wrong_answers() {
    let dir = scratch_dir();
    let mem = fixture_table(200);
    let path = dir.join("t.mdet");
    let paged = mem.to_paged(&path, 256, BufferPool::new(4)).unwrap();
    let oracle = paged.try_batch().unwrap();
    assert_eq!(&*oracle, &*mem.batch(), "pristine file must round-trip");
    drop(paged);

    let pristine = std::fs::read(&path).unwrap();
    let mut state = chaos_seed();
    for trial in 0..48 {
        let byte = (next(&mut state) as usize) % pristine.len();
        let bit = (next(&mut state) % 8) as u8;
        let mut mutated = pristine.clone();
        mutated[byte] ^= 1 << bit;
        let victim = dir.join("flip.mdet");
        std::fs::write(&victim, &mutated).unwrap();
        match open_and_decode(&victim, 4) {
            Err(e) => {
                assert_typed_storage_error(&e, &format!("trial {trial}: bit {bit} of byte {byte}"))
            }
            Ok(batch) => panic!(
                "trial {trial}: flip of bit {bit} at byte {byte} went undetected \
                 (decoded {} rows)",
                batch.len()
            ),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncation at seed-chosen lengths — mid-header, mid-directory,
/// mid-page, one byte short — is caught at open or first read.
#[test]
fn truncation_is_detected() {
    let dir = scratch_dir();
    let path = dir.join("t.mdet");
    drop(
        fixture_table(200)
            .to_paged(&path, 256, BufferPool::new(4))
            .unwrap(),
    );
    let pristine = std::fs::read(&path).unwrap();

    let mut state = chaos_seed() ^ 0x5eed;
    let mut cuts = vec![0, 10, pristine.len() - 1];
    for _ in 0..8 {
        cuts.push((next(&mut state) as usize) % pristine.len());
    }
    for cut in cuts {
        let victim = dir.join("cut.mdet");
        std::fs::write(&victim, &pristine[..cut]).unwrap();
        let err = open_and_decode(&victim, 4)
            .expect_err(&format!("truncation to {cut} bytes must be detected"));
        assert_typed_storage_error(&err, &format!("truncation to {cut} bytes"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn write — the tail half of a page frame replaced by other bytes,
/// as an interrupted in-place overwrite would leave it — fails that
/// page's checksum.
#[test]
fn torn_page_write_is_detected() {
    let dir = scratch_dir();
    let path = dir.join("t.mdet");
    let paged = fixture_table(200)
        .to_paged(&path, 256, BufferPool::new(4))
        .unwrap();
    let n_pages = paged.paged_store().unwrap().n_pages();
    assert!(n_pages > 2, "fixture must span multiple pages");
    drop(paged);

    let mut bytes = std::fs::read(&path).unwrap();
    let mut state = chaos_seed() ^ 0x7042;
    let page = (next(&mut state) as usize) % n_pages;
    let frame_start = bytes.len() - (n_pages - page) * 256;
    for b in &mut bytes[frame_start + 128..frame_start + 256] {
        *b = 0xAB;
    }
    std::fs::write(&path, &bytes).unwrap();
    let err = open_and_decode(&path, 4).expect_err("torn page must be detected");
    assert_typed_storage_error(&err, &format!("torn write in page {page}"));
    std::fs::remove_dir_all(&dir).ok();
}

/// A file with someone else's magic — or a page frame wearing the table
/// magic — is rejected before any decoding.
#[test]
fn foreign_magic_is_rejected() {
    let dir = scratch_dir();
    let path = dir.join("t.mdet");
    drop(
        fixture_table(60)
            .to_paged(&path, 256, BufferPool::new(4))
            .unwrap(),
    );
    let pristine = std::fs::read(&path).unwrap();

    // File-level: a checkpoint (or arbitrary) magic is not a table.
    for magic in [b"MDECKPT1", b"GARBAGE!"] {
        let mut mutated = pristine.clone();
        mutated[..8].copy_from_slice(magic);
        let victim = dir.join("magic.mdet");
        std::fs::write(&victim, &mutated).unwrap();
        let err = open_and_decode(&victim, 4).expect_err("foreign magic must be rejected");
        assert_typed_storage_error(&err, "foreign file magic");
    }

    // Frame-level: overwrite the first frame's magic with the table
    // magic; the page read must reject it.
    let mut mutated = pristine.clone();
    let first_frame = {
        let t = Table::open_paged(&path, BufferPool::new(2)).unwrap();
        mutated.len() - t.paged_store().unwrap().n_pages() * 256
    };
    mutated[first_frame..first_frame + 8]
        .copy_from_slice(&model_data_ecosystems::mcdb::storage::TABLE_MAGIC);
    let victim = dir.join("framemagic.mdet");
    std::fs::write(&victim, &mutated).unwrap();
    let err = open_and_decode(&victim, 4).expect_err("foreign frame magic must be rejected");
    assert_typed_storage_error(&err, "foreign frame magic");
    std::fs::remove_dir_all(&dir).ok();
}

/// The headline bounded-memory property: scanning a working set ~8× the
/// pool's frame budget completes correctly while frame residency never
/// exceeds the budget — the pool evicts instead of growing.
#[test]
fn scan_of_8x_working_set_stays_within_frame_budget() {
    let dir = scratch_dir();
    let mem = fixture_table(4000);
    let path = dir.join("big.mdet");
    // Size the pool to 1/8 of the page count (at least 2 frames).
    let probe = mem.to_paged(&path, 256, BufferPool::new(2)).unwrap();
    let n_pages = probe.paged_store().unwrap().n_pages();
    drop(probe);
    let budget = (n_pages / 8).max(2);
    let pool = BufferPool::new(budget);

    let mut db = Catalog::new();
    db.insert(mem);
    let mut oracle = Catalog::new();
    oracle.insert(Table::open_paged(&path, Arc::clone(&pool)).unwrap());

    for plan in [
        Plan::scan("T"),
        Plan::scan("T").filter(Expr::col("V").gt(Expr::lit(100.0))),
        Plan::scan("T").aggregate(
            &["TAG"],
            vec![model_data_ecosystems::mcdb::query::AggSpec::count_star("N")],
        ),
    ] {
        let want = db.query(&plan).unwrap();
        let got = oracle.query(&plan).unwrap();
        assert_eq!(want.rows(), got.rows());
        let stats = pool.stats();
        assert!(
            stats.resident <= budget,
            "resident {} frames exceeds budget {budget}",
            stats.resident
        );
    }
    let stats = pool.stats();
    assert!(
        stats.evictions > 0,
        "an 8x working set must evict (pages {n_pages}, budget {budget})"
    );
    assert!(stats.hits + stats.misses >= n_pages as u64);
    assert!(pool.pressure() <= 1.0 + f64::EPSILON);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Mid-morsel faults on worker threads (ISSUE 9)
// ---------------------------------------------------------------------------

/// A seed-chosen page corrupted mid-file fires inside a *worker thread*
/// during morsel-parallel page decoding. Contract: every thread count
/// returns the byte-identical typed error sequential execution returns
/// (lowest-page-wins error merge), never a panic, deadlock, or partial
/// answer.
#[test]
fn page_corrupt_mid_morsel_matches_sequential_error() {
    use model_data_ecosystems::mcdb::query::ExecConfig;

    let dir = scratch_dir();
    let path = dir.join("t.mdet");
    let paged = fixture_table(600)
        .to_paged(&path, 256, BufferPool::new(8))
        .unwrap();
    let n_pages = paged.paged_store().unwrap().n_pages();
    assert!(n_pages > 4, "fixture must span enough pages for morsels");
    drop(paged);

    // Corrupt a page in the middle of the file (never page 0) so
    // several healthy morsels precede and follow the poisoned one.
    let mut bytes = std::fs::read(&path).unwrap();
    let mut state = chaos_seed() ^ 0x0515;
    let victim_page = 1 + (next(&mut state) as usize) % (n_pages - 2);
    let frame_start = bytes.len() - (n_pages - victim_page) * 256;
    // Flip a body byte: caught by the frame checksum during decode.
    bytes[frame_start + 64] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let plans = [
        Plan::scan("T"),
        Plan::scan("T").filter(Expr::col("V").gt(Expr::lit(10.0))),
        Plan::scan("T").aggregate(
            &["TAG"],
            vec![model_data_ecosystems::mcdb::query::AggSpec::count_star("N")],
        ),
    ];
    for plan in &plans {
        let mut sequential_err: Option<String> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut db = Catalog::new();
            db.insert(Table::open_paged(&path, BufferPool::new(8)).unwrap());
            db.set_exec_config(ExecConfig {
                threads,
                morsel_rows: 64,
            });
            let err = db
                .query(plan)
                .expect_err("a corrupt page must fail the scan");
            assert_typed_storage_error(&err, &format!("page {victim_page} at {threads} threads"));
            let msg = err.to_string();
            match &sequential_err {
                None => sequential_err = Some(msg),
                Some(seq) => assert_eq!(
                    seq, &msg,
                    "worker-thread error at {threads} threads diverged from sequential"
                ),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent morsel-parallel scans over one starved buffer pool: each
/// worker pins a frame while decoding, so parallel readers can exhaust
/// a budget sequential execution never would. Contract: every query
/// either succeeds with bit-identical rows or fails with the *typed,
/// retryable* `McdbError::PoolExhausted` — and a bounded retry loop
/// always converges (no deadlock, no panic, no wrong answer).
#[test]
fn pool_exhausted_mid_morsel_is_typed_and_retryable() {
    use mde_numeric::{ErrorClass as _, Severity};
    use model_data_ecosystems::mcdb::query::ExecConfig;

    let dir = scratch_dir();
    let path = dir.join("t.mdet");
    let mem = fixture_table(600);
    drop(mem.to_paged(&path, 256, BufferPool::new(2)).unwrap());

    let mut oracle = Catalog::new();
    oracle.insert(fixture_table(600));
    let plan = Plan::scan("T").filter(Expr::col("V").gt(Expr::lit(0.0)));
    let want = oracle.query(&plan).unwrap();

    // One 2-frame pool shared by every concurrent reader; 8 worker
    // threads per query all pinning frames against it.
    let pool = BufferPool::new(2);
    let outcomes = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let plan = &plan;
                let path = &path;
                s.spawn(move || {
                    let mut db = Catalog::new();
                    db.insert(Table::open_paged(path, pool).unwrap());
                    db.set_exec_config(ExecConfig {
                        threads: 8,
                        morsel_rows: 64,
                    });
                    // Bounded retry: `PoolExhausted` is transient (pins
                    // drain when competing scans finish), so retrying
                    // must converge well within the bound.
                    let mut exhausted = 0u32;
                    for _ in 0..200 {
                        match db.query(plan) {
                            Ok(t) => return (t, exhausted),
                            Err(e) => {
                                assert!(
                                    matches!(
                                        e,
                                        model_data_ecosystems::mcdb::McdbError::PoolExhausted { .. }
                                    ),
                                    "starved pool must surface PoolExhausted, got: {e}"
                                );
                                assert_eq!(
                                    e.severity(),
                                    Severity::Retryable,
                                    "PoolExhausted must classify retryable"
                                );
                                exhausted += 1;
                            }
                        }
                    }
                    panic!("retry loop did not converge: pool starvation wedged the scan");
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no worker may panic"))
            .collect::<Vec<_>>()
    });

    for (got, _) in &outcomes {
        assert_eq!(
            want.rows(),
            got.rows(),
            "a scan that survived pool pressure must still be bit-identical"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
