//! The preemption chaos harness: durable campaigns interrupted at every
//! boundary must resume **bit-identically** — same estimates, same RNG
//! draw order, same [`RunReport`] ledger — at any thread count, whether
//! the checkpoint travelled through memory or through disk.
//!
//! The second half attacks the checkpoint files themselves: flipped
//! bytes, truncation, and foreign fingerprints must surface as typed
//! [`CheckpointError`]s — never panics, never silently wrong numbers.
//!
//! The master seed comes from `MDE_CHAOS_SEED` (default 11) so CI can
//! sweep a seed matrix over the same assertions.

use model_data_ecosystems::assim::pf::{BootstrapProposal, ParticleFilter, StateSpaceModel};
use model_data_ecosystems::assim::AssimError;
use model_data_ecosystems::calibrate::optim::{
    genetic_algorithm_durable, random_search_durable, resume_genetic_algorithm_from,
    resume_random_search, Bounds, GaConfig,
};
use model_data_ecosystems::calibrate::CalibrateError;
use model_data_ecosystems::core::resilience::{
    CampaignState, CancelToken, CheckpointError, CheckpointSpec, Deadline, FaultPlan, RunOptions,
    StopCause,
};
use model_data_ecosystems::mcdb::mc::{McRun, MonteCarloQuery};
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::AggSpec;
use model_data_ecosystems::mcdb::vg::NormalVg;
use model_data_ecosystems::mcdb::McdbError;
use model_data_ecosystems::metamodel::response::FnResponse;
use model_data_ecosystems::metamodel::screening::{
    resume_sequential_bifurcation_from, sequential_bifurcation_durable, BifurcationConfig,
    ScreeningRun,
};
use model_data_ecosystems::metamodel::MetamodelError;
use model_data_ecosystems::numeric::dist::{Continuous, Normal};
use model_data_ecosystems::numeric::rng::Rng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The master seed for every campaign in this harness. CI sweeps a seed
/// matrix by exporting `MDE_CHAOS_SEED`; locally the default applies.
fn chaos_seed() -> u64 {
    std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

/// A scratch checkpoint path unique to this process and test.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(name: &str) -> Self {
        ScratchFile(std::env::temp_dir().join(format!(
            "mde-durability-{}-{}-{name}.ckpt",
            std::process::id(),
            chaos_seed()
        )))
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

// ---------------------------------------------------------------------------
// Monte Carlo queries (mcdb)
// ---------------------------------------------------------------------------

/// A catalog with a `MU` column plus a query that sums one `Normal(mu, 1)`
/// draw per row — a genuinely stochastic campaign whose sample sequence
/// exposes any RNG drift across preemption and resumption.
fn normal_setup() -> (Catalog, MonteCarloQuery) {
    let mut db = Catalog::new();
    let mut builder = Table::build("T", &[("MU", DataType::Float)]);
    for mu in [0.0, 1.0, 2.5, -1.5] {
        builder = builder.row(vec![Value::from(mu)]);
    }
    db.insert(builder.finish().unwrap());
    let spec = RandomTableSpec::builder("OUT")
        .for_each(Plan::scan("T"))
        .with_vg(Arc::new(NormalVg))
        .vg_params_exprs(&[Expr::col("MU"), Expr::lit(1.0)])
        .select(&[("V", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let q = MonteCarloQuery::new(
        vec![spec],
        Plan::scan("OUT").aggregate(&[], vec![AggSpec::new("S", AggFunc::Sum, Expr::col("V"))]),
    );
    (db, q)
}

/// Preempt exactly before `cut` and return the partial run.
fn preempt_opts(cut: u64) -> RunOptions {
    RunOptions::default().with_faults(FaultPlan::new().preempt_at(cut))
}

fn assert_mc_runs_identical(resumed: &McRun, baseline: &McRun, context: &str) {
    let a: Vec<u64> = resumed
        .result
        .samples()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let b: Vec<u64> = baseline
        .result
        .samples()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(a, b, "{context}: samples diverged");
    assert_eq!(
        resumed.report, baseline.report,
        "{context}: ledgers diverged"
    );
    assert_eq!(
        resumed.stopped, None,
        "{context}: resumed run did not finish"
    );
}

#[test]
fn mc_preempted_runs_resume_bit_identically_at_every_boundary() {
    let seed = chaos_seed();
    let n = 24;
    let (db, q) = normal_setup();
    let baseline = q
        .run_with_options(&db, n, seed, &RunOptions::default())
        .unwrap();
    assert_eq!(baseline.result.n(), n);

    for cut in 0..n as u64 {
        let partial = q
            .run_with_options(&db, n, seed, &preempt_opts(cut))
            .unwrap();
        assert_eq!(partial.stopped, Some(StopCause::Preempted), "cut {cut}");
        assert_eq!(partial.result.n(), cut as usize, "cut {cut}");
        let state = partial
            .checkpoint
            .clone()
            .expect("stopped run carries a checkpoint");
        assert_eq!(state.cursor, cut);

        // Sequential resume.
        let resumed = q
            .resume_with_options(&db, n, seed, &RunOptions::default(), state.clone())
            .unwrap();
        assert_mc_runs_identical(&resumed, &baseline, &format!("seq resume at {cut}"));

        // The same checkpoint resumes on every thread count — including a
        // sequentially written checkpoint picked up by the parallel path.
        for threads in [1, 2, 4] {
            let resumed = q
                .resume_parallel_with_options(
                    &db,
                    n,
                    seed,
                    threads,
                    &RunOptions::default(),
                    state.clone(),
                )
                .unwrap();
            assert_mc_runs_identical(
                &resumed,
                &baseline,
                &format!("parallel({threads}) resume at {cut}"),
            );
        }
    }
}

#[test]
fn mc_parallel_preemption_stops_at_the_sequential_boundary() {
    let seed = chaos_seed();
    let n = 20;
    let (db, q) = normal_setup();
    let baseline = q
        .run_with_options(&db, n, seed, &RunOptions::default())
        .unwrap();

    for cut in [0u64, 1, 7, 13, 19] {
        for threads in [2, 4] {
            let partial = q
                .run_parallel_with_options(&db, n, seed, threads, &preempt_opts(cut))
                .unwrap();
            assert_eq!(partial.stopped, Some(StopCause::Preempted));
            // A stopped parallel run commits exactly the contiguous prefix
            // the sequential run would.
            assert_eq!(
                partial.result.n(),
                cut as usize,
                "threads {threads}, cut {cut}"
            );
            let state = partial.checkpoint.clone().unwrap();
            let resumed = q
                .resume_with_options(&db, n, seed, &RunOptions::default(), state)
                .unwrap();
            assert_mc_runs_identical(
                &resumed,
                &baseline,
                &format!("parallel({threads}) preempt at {cut}, seq resume"),
            );
        }
    }
}

#[test]
fn mc_checkpoint_survives_the_disk_round_trip() {
    let seed = chaos_seed();
    let n = 16;
    let (db, q) = normal_setup();
    let baseline = q
        .run_with_options(&db, n, seed, &RunOptions::default())
        .unwrap();

    let scratch = ScratchFile::new("mc-disk");
    let opts = preempt_opts(9).with_checkpoint(CheckpointSpec::new(scratch.path()).every(1));
    let partial = q.run_with_options(&db, n, seed, &opts).unwrap();
    assert_eq!(partial.stopped, Some(StopCause::Preempted));

    // The stopped run left its final state on disk; both resume paths read
    // it back and finish bit-identically.
    let resumed = q
        .resume_from(&db, n, seed, &RunOptions::default(), scratch.path())
        .unwrap();
    assert_mc_runs_identical(&resumed, &baseline, "resume_from disk");
    let resumed = q
        .resume_parallel_from(&db, n, seed, 3, &RunOptions::default(), scratch.path())
        .unwrap();
    assert_mc_runs_identical(&resumed, &baseline, "resume_parallel_from disk");
}

#[test]
fn mc_deadline_and_cancellation_stop_cleanly_with_partial_results() {
    let seed = chaos_seed();
    let n = 12;
    let (db, q) = normal_setup();
    let baseline = q
        .run_with_options(&db, n, seed, &RunOptions::default())
        .unwrap();

    // An already-expired deadline: zero replicates, but a valid checkpoint
    // and no error.
    let opts = RunOptions::default().with_deadline(Deadline::after(Duration::ZERO));
    let run = q.run_with_options(&db, n, seed, &opts).unwrap();
    assert_eq!(run.stopped, Some(StopCause::Deadline));
    assert_eq!(run.result.n(), 0);
    let resumed = q
        .resume_with_options(
            &db,
            n,
            seed,
            &RunOptions::default(),
            run.checkpoint.unwrap(),
        )
        .unwrap();
    assert_mc_runs_identical(&resumed, &baseline, "resume after deadline");

    // A pre-cancelled token behaves the same, sequentially and in parallel.
    let token = CancelToken::new();
    token.cancel();
    let opts = RunOptions::default().with_cancel(token.clone());
    let run = q.run_with_options(&db, n, seed, &opts).unwrap();
    assert_eq!(run.stopped, Some(StopCause::Cancelled));
    assert_eq!(run.result.n(), 0);
    let run = q
        .run_parallel_with_options(&db, n, seed, 4, &RunOptions::default().with_cancel(token))
        .unwrap();
    assert_eq!(run.stopped, Some(StopCause::Cancelled));
    let resumed = q
        .resume_with_options(
            &db,
            n,
            seed,
            &RunOptions::default(),
            run.checkpoint.unwrap(),
        )
        .unwrap();
    assert_mc_runs_identical(&resumed, &baseline, "resume after cancellation");
}

// ---------------------------------------------------------------------------
// Checkpoint files under attack
// ---------------------------------------------------------------------------

/// Write a valid mid-campaign checkpoint to disk and return its bytes.
fn checkpointed_mc_state(scratch: &ScratchFile) -> (Catalog, MonteCarloQuery, Vec<u8>) {
    let (db, q) = normal_setup();
    let opts = preempt_opts(5).with_checkpoint(CheckpointSpec::new(scratch.path()).every(1));
    let run = q.run_with_options(&db, 10, chaos_seed(), &opts).unwrap();
    assert_eq!(run.stopped, Some(StopCause::Preempted));
    let bytes = std::fs::read(scratch.path()).unwrap();
    (db, q, bytes)
}

#[test]
fn corrupt_checkpoints_yield_typed_errors_never_panics() {
    let scratch = ScratchFile::new("mc-corrupt");
    let (db, q, bytes) = checkpointed_mc_state(&scratch);
    let seed = chaos_seed();

    // Flip one byte at a sweep of offsets: magic, header, checksum, and
    // body corruption must all decode to a typed CheckpointError.
    for offset in [0, 4, 9, 17, bytes.len() / 2, bytes.len() - 1] {
        let mut torn = bytes.clone();
        torn[offset] ^= 0xA5;
        std::fs::write(scratch.path(), &torn).unwrap();
        let err = q
            .resume_from(&db, 10, seed, &RunOptions::default(), scratch.path())
            .unwrap_err();
        assert!(
            matches!(
                err,
                McdbError::Checkpoint(
                    CheckpointError::Corrupt { .. } | CheckpointError::ChecksumMismatch { .. }
                )
            ),
            "flipped byte {offset}: unexpected error {err}"
        );
    }

    // Truncation at every prefix length — header-only, mid-body, empty.
    for keep in [0, 7, 16, bytes.len() / 3, bytes.len() - 1] {
        std::fs::write(scratch.path(), &bytes[..keep]).unwrap();
        let err = q
            .resume_from(&db, 10, seed, &RunOptions::default(), scratch.path())
            .unwrap_err();
        assert!(
            matches!(
                err,
                McdbError::Checkpoint(
                    CheckpointError::Corrupt { .. } | CheckpointError::ChecksumMismatch { .. }
                )
            ),
            "truncated to {keep}: unexpected error {err}"
        );
    }

    // A missing file is a typed I/O error.
    std::fs::remove_file(scratch.path()).unwrap();
    let err = q
        .resume_from(&db, 10, seed, &RunOptions::default(), scratch.path())
        .unwrap_err();
    assert!(
        matches!(err, McdbError::Checkpoint(CheckpointError::Io { .. })),
        "{err}"
    );
}

#[test]
fn foreign_checkpoints_are_refused_across_every_surface() {
    let scratch = ScratchFile::new("mc-foreign");
    let (db, q, _) = checkpointed_mc_state(&scratch);
    let seed = chaos_seed();

    // Same campaign, different seed → fingerprint mismatch.
    let err = q
        .resume_from(&db, 10, seed + 1, &RunOptions::default(), scratch.path())
        .unwrap_err();
    assert!(
        matches!(err, McdbError::Checkpoint(CheckpointError::Mismatch { .. })),
        "{err}"
    );

    // Same campaign, different replicate count → fingerprint mismatch.
    let err = q
        .resume_from(&db, 11, seed, &RunOptions::default(), scratch.path())
        .unwrap_err();
    assert!(
        matches!(err, McdbError::Checkpoint(CheckpointError::Mismatch { .. })),
        "{err}"
    );

    // A Monte Carlo checkpoint handed to the other durable surfaces is
    // refused by campaign tag, not misinterpreted.
    let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
    let err = resume_genetic_algorithm_from(
        |x| x[0],
        &bounds,
        &GaConfig::default(),
        seed,
        &RunOptions::default(),
        scratch.path(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            CalibrateError::Checkpoint(CheckpointError::Mismatch { .. })
        ),
        "{err}"
    );

    let response = FnResponse::new(4, |x: &[f64], _rng: &mut Rng| x.iter().sum());
    let err = resume_sequential_bifurcation_from(
        &response,
        &BifurcationConfig::default(),
        seed,
        &RunOptions::default(),
        scratch.path(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            MetamodelError::Checkpoint(CheckpointError::Mismatch { .. })
        ),
        "{err}"
    );

    let state = CampaignState::load(scratch.path()).unwrap();
    let pf = ParticleFilter::new(64, seed);
    let ys = vec![0.0; 6];
    let err = pf
        .resume_durable(
            &ar1_model(),
            &BootstrapProposal,
            &ys,
            &RunOptions::default(),
            state,
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            AssimError::Checkpoint(CheckpointError::Mismatch { .. })
        ),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// Particle filter (assim)
// ---------------------------------------------------------------------------

/// Scalar AR(1) state-space model with Gaussian observation noise.
struct Ar1 {
    phi: f64,
    q: f64,
    r: f64,
}

impl StateSpaceModel for Ar1 {
    type State = f64;
    type Obs = f64;

    fn sample_initial(&self, rng: &mut Rng) -> f64 {
        2.0 * Normal::sample_standard(rng)
    }

    fn sample_transition(&self, prev: &f64, rng: &mut Rng) -> f64 {
        self.phi * prev + self.q * Normal::sample_standard(rng)
    }

    fn ln_likelihood(&self, state: &f64, obs: &f64) -> f64 {
        Normal::new(*state, self.r).unwrap().ln_pdf(*obs)
    }
}

fn ar1_model() -> Ar1 {
    Ar1 {
        phi: 0.9,
        q: 0.4,
        r: 0.6,
    }
}

/// A fixed observation sequence — the filter does not care that it came
/// from a formula rather than the model.
fn ar1_observations(t: usize) -> Vec<f64> {
    (0..t).map(|i| (i as f64 * 0.7).sin() * 2.0).collect()
}

fn assert_pf_runs_identical(
    resumed: &model_data_ecosystems::assim::PfRun<f64>,
    baseline: &model_data_ecosystems::assim::PfRun<f64>,
    context: &str,
) {
    assert_eq!(
        resumed.steps.len(),
        baseline.steps.len(),
        "{context}: step counts"
    );
    for (t, (a, b)) in resumed.steps.iter().zip(&baseline.steps).enumerate() {
        let pa: Vec<u64> = a.particles.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = b.particles.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pa, pb, "{context}: particles diverged at step {t}");
        assert_eq!(
            a.ess.to_bits(),
            b.ess.to_bits(),
            "{context}: ESS diverged at step {t}"
        );
        assert_eq!(
            a.ln_evidence_increment.to_bits(),
            b.ln_evidence_increment.to_bits(),
            "{context}: evidence diverged at step {t}"
        );
    }
    assert_eq!(
        resumed.report, baseline.report,
        "{context}: ledgers diverged"
    );
    assert_eq!(
        resumed.stopped, None,
        "{context}: resumed run did not finish"
    );
}

#[test]
fn pf_preempted_runs_resume_bit_identically_at_every_step() {
    let seed = chaos_seed();
    let t = 10;
    let model = ar1_model();
    let ys = ar1_observations(t);
    let pf = ParticleFilter::new(200, seed);
    let baseline = pf
        .run_durable(&model, &BootstrapProposal, &ys, &RunOptions::default())
        .unwrap();
    assert_eq!(baseline.steps.len(), t);

    for cut in 0..t as u64 {
        let partial = pf
            .run_durable(&model, &BootstrapProposal, &ys, &preempt_opts(cut))
            .unwrap();
        assert_eq!(partial.stopped, Some(StopCause::Preempted), "cut {cut}");
        assert_eq!(partial.steps.len(), cut as usize);
        let resumed = pf
            .resume_durable(
                &model,
                &BootstrapProposal,
                &ys,
                &RunOptions::default(),
                partial.checkpoint.unwrap(),
            )
            .unwrap();
        assert_pf_runs_identical(&resumed, &baseline, &format!("pf resume at {cut}"));
    }
}

#[test]
fn pf_checkpoint_survives_the_disk_round_trip() {
    let seed = chaos_seed();
    let model = ar1_model();
    let ys = ar1_observations(8);
    let pf = ParticleFilter::new(150, seed);
    let baseline = pf
        .run_durable(&model, &BootstrapProposal, &ys, &RunOptions::default())
        .unwrap();

    let scratch = ScratchFile::new("pf-disk");
    let opts = preempt_opts(4).with_checkpoint(CheckpointSpec::new(scratch.path()).every(1));
    let partial = pf
        .run_durable(&model, &BootstrapProposal, &ys, &opts)
        .unwrap();
    assert_eq!(partial.stopped, Some(StopCause::Preempted));
    let resumed = pf
        .resume_durable_from(
            &model,
            &BootstrapProposal,
            &ys,
            &RunOptions::default(),
            scratch.path(),
        )
        .unwrap();
    assert_pf_runs_identical(&resumed, &baseline, "pf resume_from disk");
}

// ---------------------------------------------------------------------------
// Optimizers (calibrate)
// ---------------------------------------------------------------------------

fn rosenbrock(x: &[f64]) -> f64 {
    (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
}

fn assert_optim_runs_identical(
    resumed: &model_data_ecosystems::calibrate::optim::OptimRun,
    baseline: &model_data_ecosystems::calibrate::optim::OptimRun,
    context: &str,
) {
    let a = resumed.best.as_ref().expect("resumed best");
    let b = baseline.best.as_ref().expect("baseline best");
    let ax: Vec<u64> = a.x.iter().map(|v| v.to_bits()).collect();
    let bx: Vec<u64> = b.x.iter().map(|v| v.to_bits()).collect();
    assert_eq!(ax, bx, "{context}: best point diverged");
    assert_eq!(
        a.fx.to_bits(),
        b.fx.to_bits(),
        "{context}: best value diverged"
    );
    assert_eq!(a.evals, b.evals, "{context}: evaluation counts diverged");
    assert_eq!(
        resumed.report, baseline.report,
        "{context}: ledgers diverged"
    );
    assert_eq!(
        resumed.stopped, None,
        "{context}: resumed run did not finish"
    );
}

#[test]
fn ga_checkpoint_survives_the_disk_round_trip() {
    let seed = chaos_seed();
    let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
    let cfg = GaConfig {
        population: 12,
        generations: 6,
        ..GaConfig::default()
    };
    let baseline =
        genetic_algorithm_durable(rosenbrock, &bounds, &cfg, seed, &RunOptions::default()).unwrap();

    for cut in 0..=cfg.generations as u64 {
        let scratch = ScratchFile::new(&format!("ga-disk-{cut}"));
        let opts = preempt_opts(cut).with_checkpoint(CheckpointSpec::new(scratch.path()).every(1));
        let partial = genetic_algorithm_durable(rosenbrock, &bounds, &cfg, seed, &opts).unwrap();
        assert_eq!(partial.stopped, Some(StopCause::Preempted), "cut {cut}");
        let resumed = resume_genetic_algorithm_from(
            rosenbrock,
            &bounds,
            &cfg,
            seed,
            &RunOptions::default(),
            scratch.path(),
        )
        .unwrap();
        assert_optim_runs_identical(&resumed, &baseline, &format!("ga disk resume at {cut}"));
    }
}

#[test]
fn random_search_deadline_checkpoint_resumes_to_the_full_budget() {
    let seed = chaos_seed();
    let bounds = Bounds::new(vec![(-3.0, 3.0), (-3.0, 3.0)]).unwrap();
    let evals = 32;
    let baseline =
        random_search_durable(rosenbrock, &bounds, evals, seed, &RunOptions::default()).unwrap();

    let opts = RunOptions::default().with_deadline(Deadline::after(Duration::ZERO));
    let partial = random_search_durable(rosenbrock, &bounds, evals, seed, &opts).unwrap();
    assert_eq!(partial.stopped, Some(StopCause::Deadline));
    assert!(partial.best.is_none());
    let resumed = resume_random_search(
        rosenbrock,
        &bounds,
        evals,
        seed,
        &RunOptions::default(),
        partial.checkpoint.unwrap(),
    )
    .unwrap();
    assert_optim_runs_identical(&resumed, &baseline, "rs resume after deadline");
}

// ---------------------------------------------------------------------------
// Screening (metamodel)
// ---------------------------------------------------------------------------

fn screening_response() -> FnResponse<impl Fn(&[f64], &mut Rng) -> f64> {
    let effects = [(2usize, 4.0), (9, 3.0), (13, 5.0)];
    FnResponse::new(16, move |x: &[f64], rng: &mut Rng| {
        let signal: f64 = effects.iter().map(|&(i, b)| b * x[i]).sum();
        signal + 0.2 * Normal::sample_standard(rng)
    })
}

fn assert_screening_runs_identical(resumed: &ScreeningRun, baseline: &ScreeningRun, context: &str) {
    let a = resumed.result.as_ref().expect("resumed result");
    let b = baseline.result.as_ref().expect("baseline result");
    assert_eq!(
        a.important, b.important,
        "{context}: important factors diverged"
    );
    assert_eq!(a.runs_used, b.runs_used, "{context}: run counts diverged");
    assert_eq!(
        resumed.report, baseline.report,
        "{context}: ledgers diverged"
    );
    assert_eq!(
        resumed.stopped, None,
        "{context}: resumed run did not finish"
    );
}

#[test]
fn screening_checkpoint_survives_the_disk_round_trip() {
    let seed = chaos_seed();
    let cfg = BifurcationConfig {
        threshold: 1.0,
        reps: 4,
    };
    let response = screening_response();
    let baseline =
        sequential_bifurcation_durable(&response, &cfg, seed, &RunOptions::default()).unwrap();
    let total_rounds = baseline.report.attempted as u64;

    for cut in 0..total_rounds {
        let scratch = ScratchFile::new(&format!("sb-disk-{cut}"));
        let opts = preempt_opts(cut).with_checkpoint(CheckpointSpec::new(scratch.path()).every(1));
        let partial = sequential_bifurcation_durable(&response, &cfg, seed, &opts).unwrap();
        assert_eq!(partial.stopped, Some(StopCause::Preempted), "cut {cut}");
        assert!(
            partial.result.is_none(),
            "cut {cut}: queue should not be drained"
        );
        let resumed = resume_sequential_bifurcation_from(
            &response,
            &cfg,
            seed,
            &RunOptions::default(),
            scratch.path(),
        )
        .unwrap();
        assert_screening_runs_identical(&resumed, &baseline, &format!("sb disk resume at {cut}"));
    }
}
