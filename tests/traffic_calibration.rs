//! Cross-crate integration: calibrating the traffic ABS against "observed"
//! flow data — the closing move of the paper's introduction: agent rules
//! create the jams, and "data is key to parametrizing and calibrating such
//! models".
//!
//! Ground truth: a Nagel–Schreckenberg road with an unknown driver-noise
//! parameter `p_slow`. Observed data: the fundamental-diagram flows at a
//! few densities. Calibration: method of simulated moments over `p_slow`.

use model_data_ecosystems::abs::traffic::{fundamental_diagram, TrafficConfig};
use model_data_ecosystems::calibrate::msm::{MsmProblem, Simulator};

fn flows_at(p_slow: f64, seed: u64) -> Vec<f64> {
    let cfg = TrafficConfig {
        length: 150,
        p_slow,
        ..TrafficConfig::default()
    };
    fundamental_diagram(&cfg, &[0.15, 0.3, 0.5], 100, 150, seed)
        .into_iter()
        .map(|(_, flow, _)| flow)
        .collect()
}

#[test]
fn recovers_driver_noise_from_flow_observations() {
    let true_p_slow = 0.3;
    // "Observed" flows, averaged over independent days.
    let mut observed = vec![0.0; 3];
    let days = 6;
    for d in 0..days {
        for (o, v) in observed.iter_mut().zip(flows_at(true_p_slow, 100 + d)) {
            *o += v / days as f64;
        }
    }

    let simulator: &Simulator =
        &|theta: &[f64], seed: u64| flows_at(theta[0].clamp(0.0, 0.9), seed);
    let problem = MsmProblem::new(observed, simulator, 3, 7);
    let res = problem.calibrate(&[0.1], 60).unwrap();
    let p_hat = res.x[0].clamp(0.0, 0.9);

    assert!(
        (p_hat - true_p_slow).abs() < 0.08,
        "p_slow estimate {p_hat} vs truth {true_p_slow} (J = {})",
        res.fx
    );
    // The calibrated model reproduces the observed congestion level: flow
    // at rho = 0.5 within 15% of observation.
    let fitted = flows_at(p_hat, 999);
    let observed_again = flows_at(true_p_slow, 999);
    assert!(
        (fitted[2] - observed_again[2]).abs() < 0.15 * observed_again[2].max(0.1),
        "congested flow: fitted {} vs observed {}",
        fitted[2],
        observed_again[2]
    );
}
