//! Property-based tests for the harmonization layer (§2.2): the spline /
//! DSGD pipeline and the gridfield rewrite, across randomized inputs.

use model_data_ecosystems::harmonize::align::{align, AlignSpec, InterpMethod};
use model_data_ecosystems::harmonize::dsgd::{dsgd_solve, DsgdConfig};
use model_data_ecosystems::harmonize::gridfield::{
    regrid_then_restrict, restrict_then_regrid, Grid, GridField, Regrid, RegridAgg,
};
use model_data_ecosystems::harmonize::series::TimeSeries;
use model_data_ecosystems::harmonize::spline::{build_spline_system, NaturalCubicSpline};
use model_data_ecosystems::numeric::linalg::Tridiagonal;
use model_data_ecosystems::numeric::rng::rng_from_seed;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The spline interpolates its knots exactly, for arbitrary strictly
    /// increasing knot grids and bounded values.
    #[test]
    fn spline_interpolates_knots(
        gaps in prop::collection::vec(0.05f64..3.0, 2..40),
        values_seed in 0u64..10_000,
    ) {
        let mut s = vec![0.0];
        for g in &gaps {
            s.push(s.last().unwrap() + g);
        }
        let d: Vec<f64> = s
            .iter()
            .enumerate()
            .map(|(i, x)| ((i as f64 + values_seed as f64) * 0.7).sin() * 5.0 + x * 0.3)
            .collect();
        let sp = NaturalCubicSpline::fit(&s, &d).unwrap();
        for (si, di) in s.iter().zip(&d) {
            prop_assert!((sp.eval(*si) - di).abs() < 1e-7,
                "knot ({}, {}) missed: {}", si, di, sp.eval(*si));
        }
    }

    /// DSGD solves the spline system to the same answer as Thomas, and the
    /// residual after the run is a small fraction of the initial one.
    #[test]
    fn dsgd_agrees_with_thomas(
        n in 5usize..60,
        scale in 0.5f64..5.0,
        seed in 0u64..100,
    ) {
        let s: Vec<f64> = (0..=n).map(|i| i as f64 * 0.5).collect();
        let d: Vec<f64> = s.iter().map(|&t| (t * scale).sin() * 2.0).collect();
        let sys = build_spline_system(&s, &d).unwrap();
        let exact = sys.a.solve(&sys.b).unwrap();
        let cfg = DsgdConfig {
            cycles: 3000,
            schedule: model_data_ecosystems::harmonize::sgd::StepSchedule {
                epsilon0: 0.15,
                alpha: 0.51,
            },
            threads: 2,
            record_residuals: false,
        };
        let res = dsgd_solve(&sys.a, &sys.b, &cfg, &mut rng_from_seed(seed));
        let max_err = res.x.iter().zip(&exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let scale_ref = exact.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        prop_assert!(max_err < 0.05 * scale_ref, "max err {} vs scale {}", max_err, scale_ref);
    }

    /// Thread count never changes a DSGD result (the race-freedom
    /// guarantee of the stratification).
    #[test]
    fn dsgd_thread_invariance(
        n in 4usize..80,
        threads in 2usize..8,
        seed in 0u64..100,
    ) {
        let a = Tridiagonal::new(vec![1.0; n - 1], vec![4.0; n], vec![1.0; n - 1]).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let cfg1 = DsgdConfig { cycles: 20, threads: 1, ..DsgdConfig::default() };
        let cfg2 = DsgdConfig { cycles: 20, threads, ..DsgdConfig::default() };
        let r1 = dsgd_solve(&a, &b, &cfg1, &mut rng_from_seed(seed));
        let r2 = dsgd_solve(&a, &b, &cfg2, &mut rng_from_seed(seed));
        for (p, q) in r1.x.iter().zip(&r2.x) {
            prop_assert!((p - q).abs() < 1e-12);
        }
    }

    /// Parallel window interpolation equals serial for every method.
    #[test]
    fn alignment_thread_invariance(
        n_src in 4usize..40,
        n_tgt in 1usize..200,
        threads in 2usize..8,
    ) {
        let src = TimeSeries::from_fn("v", 0.0, 0.5, n_src, |t| (t * 1.3).cos()).unwrap();
        let span = 0.5 * (n_src - 1) as f64;
        let targets: Vec<f64> = (0..n_tgt)
            .map(|i| i as f64 * span / n_tgt as f64)
            .collect();
        for method in [InterpMethod::Nearest, InterpMethod::Linear, InterpMethod::CubicSpline] {
            if method == InterpMethod::CubicSpline && n_src < 3 {
                continue;
            }
            let serial = align(&src, &targets, AlignSpec::Interpolate(method), 1).unwrap();
            let par = align(&src, &targets, AlignSpec::Interpolate(method), threads).unwrap();
            prop_assert_eq!(serial, par);
        }
    }

    /// The restrict/regrid commutation holds for arbitrary assignments and
    /// target-cell predicates, and never costs more.
    #[test]
    fn gridfield_rewrite_equivalence(
        nx in 1usize..6,
        ny in 1usize..6,
        keep_mask in 0u32..16,
        agg_pick in 0u8..4,
    ) {
        let (fine, fidx) = Grid::structured_2d(nx * 2, ny * 2).unwrap();
        let (coarse, cidx) = Grid::structured_2d(nx, ny).unwrap();
        let fine = Arc::new(fine);
        let coarse = Arc::new(coarse);
        let faces = fine.cells_of_dim(2);
        let gf = GridField::bind(
            Arc::clone(&fine),
            2,
            faces.iter().map(|&c| c as f64 * 0.5).collect(),
        ).unwrap();
        let agg = [RegridAgg::Sum, RegridAgg::Mean, RegridAgg::Max, RegridAgg::Count][agg_pick as usize];
        let op = Regrid {
            assignment: faces.iter().map(|&c| {
                let (i, j) = fidx.face_coords(c);
                Some(cidx.face(i / 2, j / 2))
            }).collect(),
            agg,
        };
        // Predicate keeps coarse faces whose (i + j·nx) bit is set in the mask.
        let keep = |c: usize| {
            let (i, j) = cidx.face_coords(c);
            (keep_mask >> ((i + j * nx) % 16)) & 1 == 1
        };
        let (naive, naive_cost) =
            regrid_then_restrict(&gf, &coarse, 2, &op, keep).unwrap();
        let (rewritten, rewritten_cost) =
            restrict_then_regrid(&gf, &coarse, 2, &op, keep).unwrap();
        prop_assert_eq!(naive, rewritten);
        prop_assert!(rewritten_cost.accumulate_ops <= naive_cost.accumulate_ops);
    }
}
