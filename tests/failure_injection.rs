//! Failure injection: errors raised deep inside Monte Carlo loops,
//! composite executions, and parallel workers must surface as typed errors
//! — never panics, never silently wrong numbers.
//!
//! The second half exercises the resilience runtime end to end: under
//! [`RunPolicy::FailFast`] injected panics become typed errors, under
//! [`RunPolicy::Retry`] replicates recover on fresh deterministic
//! sub-seeds identically at every thread count, and under
//! [`RunPolicy::BestEffort`] the returned [`RunReport`] ledger matches the
//! injected [`FaultPlan`] exactly.

use model_data_ecosystems::core::composite::{CompositeModel, ParamAssignment};
use model_data_ecosystems::core::registry::{
    FnSimModel, ModelMetadata, PerfStats, PortSpec, Registry,
};
use model_data_ecosystems::core::resilience::{FaultKind, FaultPlan, RunOptions, RunPolicy};
use model_data_ecosystems::core::CoreError;
use model_data_ecosystems::harmonize::series::TimeSeries;
use model_data_ecosystems::mcdb::mc::MonteCarloQuery;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::{AggFunc, AggSpec};
use model_data_ecosystems::mcdb::schema::Schema;
use model_data_ecosystems::mcdb::vg::{OutputCardinality, VgFunction};
use std::sync::Arc;

/// A VG function that errors whenever its parameter is negative.
#[derive(Debug)]
struct FragileVg;

impl VgFunction for FragileVg {
    fn name(&self) -> &str {
        "Fragile"
    }

    fn output_schema(&self) -> Schema {
        Schema::from_pairs(&[("VALUE", DataType::Float)]).unwrap()
    }

    fn arity(&self) -> Option<usize> {
        Some(1)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(
        &self,
        params: &[Value],
        _rng: &mut model_data_ecosystems::numeric::rng::Rng,
    ) -> model_data_ecosystems::mcdb::Result<Vec<Vec<Value>>> {
        let p = params
            .first()
            .ok_or_else(|| {
                model_data_ecosystems::mcdb::McdbError::invalid_plan(
                    "Fragile requires exactly one parameter",
                )
            })?
            .as_f64()?;
        if p < 0.0 {
            return Err(model_data_ecosystems::mcdb::McdbError::invalid_plan(
                "negative parameter reached the stochastic model",
            ));
        }
        Ok(vec![vec![Value::Float(p)]])
    }
}

/// A catalog with one `P` column holding `values`, plus a Monte Carlo
/// query that pushes each `P` through [`FragileVg`] and sums the output.
fn fragile_setup(values: &[f64]) -> (Catalog, MonteCarloQuery) {
    let mut db = Catalog::new();
    let mut builder = Table::build("T", &[("P", DataType::Float)]);
    for &v in values {
        builder = builder.row(vec![Value::from(v)]);
    }
    db.insert(builder.finish().unwrap());
    let spec = RandomTableSpec::builder("OUT")
        .for_each(Plan::scan("T"))
        .with_vg(Arc::new(FragileVg))
        .vg_params_exprs(&[Expr::col("P")])
        .select(&[("V", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let q = MonteCarloQuery::new(
        vec![spec],
        Plan::scan("OUT").aggregate(&[], vec![AggSpec::new("S", AggFunc::Sum, Expr::col("V"))]),
    );
    (db, q)
}

#[test]
fn vg_failure_surfaces_from_monte_carlo_loop() {
    let (db, q) = fragile_setup(&[1.0, -1.0]); // second row is poison
    let err = q.run(&db, 10, 1).unwrap_err();
    assert!(err.to_string().contains("negative parameter"), "{err}");
    // The parallel path surfaces the same error instead of hanging or
    // panicking a worker.
    let err = q.run_parallel(&db, 10, 1, 4).unwrap_err();
    assert!(err.to_string().contains("negative parameter"), "{err}");
}

#[test]
fn composite_model_failure_surfaces_with_context() {
    let mut reg = Registry::new();
    reg.register_model(Arc::new(FnSimModel::new(
        ModelMetadata {
            name: "flaky".into(),
            description: "fails after 2 ticks".into(),
            inputs: vec![],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["x".into()],
                tick: 1.0,
            },
            params: vec![],
            perf: PerfStats::default(),
        },
        |_inputs, _params, rng| {
            use rand::Rng as _;
            if rng.gen::<f64>() < 0.5 {
                // Structural failure inside the model: invalid series.
                Ok(TimeSeries::univariate("x", vec![0.0, 0.0], vec![1.0, 2.0])?)
            } else {
                Ok(TimeSeries::univariate("x", vec![0.0, 1.0], vec![1.0, 2.0])?)
            }
        },
    )));
    let mut comp = CompositeModel::new();
    comp.add_model("flaky");
    let plan = comp.plan(&reg).unwrap();
    // Across enough repetitions the flaky branch triggers; the error is a
    // typed harmonization error, not a panic.
    let result = plan.run_monte_carlo(&ParamAssignment::new(), 50, 3, |_| 0.0);
    match result {
        Err(CoreError::Harmonize(e)) => {
            assert!(e.to_string().contains("strictly increasing"), "{e}");
        }
        other => panic!("expected a harmonization error, got {other:?}"),
    }
}

#[test]
fn unknown_model_in_composite_is_reported_at_plan_time() {
    let reg = Registry::new();
    let mut comp = CompositeModel::new();
    comp.add_model("ghost");
    match comp.plan(&reg) {
        Err(CoreError::NotRegistered { kind, name }) => {
            assert_eq!(kind, "model");
            assert_eq!(name, "ghost");
        }
        Err(other) => panic!("expected NotRegistered, got {other:?}"),
        Ok(_) => panic!("expected NotRegistered, got a valid plan"),
    }
}

#[test]
fn sql_runtime_errors_are_typed() {
    let mut db = Catalog::new();
    db.insert(
        Table::build("t", &[("a", DataType::Int)])
            .row(vec![Value::from(1)])
            .finish()
            .unwrap(),
    );
    // Unknown column: caught at bind time with the available columns
    // listed.
    let err = db.sql("SELECT b FROM t").unwrap_err();
    assert!(err.to_string().contains('b'), "{err}");
    // Unknown table.
    let err = db.sql("SELECT * FROM nope").unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");
    // Type error in a predicate.
    let err = db.sql("SELECT * FROM t WHERE a + 1").unwrap_err();
    assert!(err.to_string().to_lowercase().contains("bool"), "{err}");
}

// ---------------------------------------------------------------------------
// Resilience runtime: one case per RunPolicy, driven by a FaultPlan
// ---------------------------------------------------------------------------

#[test]
fn injected_panic_surfaces_as_typed_error_under_fail_fast() {
    let (db, q) = fragile_setup(&[1.0, 2.5]);
    let opts = RunOptions::policy(RunPolicy::FailFast).with_faults(FaultPlan::new().fail_on(
        2,
        0,
        FaultKind::Panic,
    ));
    // The panic is contained by the supervisor and surfaces as a typed
    // ReplicateFailed error naming the replicate — the caller never sees
    // an unwinding panic.
    let err = q.run_with_options(&db, 6, 1, &opts).unwrap_err();
    assert!(err.to_string().contains("replicate 2"), "{err}");
    assert!(err.to_string().contains("injected fault"), "{err}");
    // The parallel path reports the identical error.
    let perr = q
        .run_parallel_with_options(&db, 6, 1, 4, &opts)
        .unwrap_err();
    assert_eq!(err.to_string(), perr.to_string());
}

#[test]
fn retry_policy_recovers_identically_at_any_thread_count() {
    let (db, q) = fragile_setup(&[1.0, 2.5]);
    let opts = RunOptions::policy(RunPolicy::Retry {
        max_attempts: 3,
        reseed: true,
    })
    .with_faults(
        FaultPlan::new()
            .fail_on(1, 0, FaultKind::Panic)
            .fail_on(3, 0, FaultKind::Error)
            .fail_on(4, 0, FaultKind::Nan),
    );
    let seq = q.run_with_options(&db, 8, 7, &opts).unwrap();
    // Every replicate recovered on its retry: a full sample, no drops.
    assert_eq!(seq.result.n(), 8);
    assert_eq!(seq.report.retried, 3);
    assert_eq!(seq.report.succeeded, 8);
    assert!(!seq.report.ci_widened);
    // Retry sub-seeds are a pure function of (seed, replicate, attempt),
    // so samples AND the failure ledger are bit-identical at every thread
    // count.
    for threads in [1, 2, 5, 8] {
        let par = q
            .run_parallel_with_options(&db, 8, 7, threads, &opts)
            .unwrap();
        assert_eq!(
            seq.result.samples(),
            par.result.samples(),
            "threads = {threads}"
        );
        assert_eq!(seq.report, par.report, "threads = {threads}");
    }
}

#[test]
fn best_effort_ledger_matches_the_injected_fault_plan() {
    let (db, q) = fragile_setup(&[1.0, 2.5]);
    let faults = FaultPlan::new()
        .fail_on(0, 0, FaultKind::Panic)
        .fail_on(5, 0, FaultKind::Error)
        // Unreachable under max_attempts = 1: expected_failure_keys
        // filters it, and the run must agree.
        .fail_on(5, 1, FaultKind::Error);
    let opts =
        RunOptions::policy(RunPolicy::BestEffort { min_fraction: 0.5 }).with_faults(faults.clone());
    let run = q.run_with_options(&db, 10, 1, &opts).unwrap();
    assert_eq!(run.result.n(), 8);
    assert_eq!(run.report.dropped, 2);
    assert!(run.report.ci_widened);
    assert_eq!(
        run.report.failure_keys(),
        faults.expected_failure_keys(&opts.policy)
    );
    // Degrading below the policy floor is a typed error, never a silent
    // estimate from too few samples.
    let strict =
        RunOptions::policy(RunPolicy::BestEffort { min_fraction: 0.95 }).with_faults(faults);
    let err = q.run_with_options(&db, 10, 1, &strict).unwrap_err();
    assert!(err.to_string().contains("below its floor"), "{err}");
}

#[test]
fn fatal_model_errors_abort_under_every_policy() {
    // The poison row raises an invalid-plan error, classified Fatal:
    // retrying or dropping a configuration error can only waste budget or
    // hide the bug, so it aborts under every policy.
    let (db, q) = fragile_setup(&[1.0, -1.0]);
    for policy in [
        RunPolicy::FailFast,
        RunPolicy::Retry {
            max_attempts: 4,
            reseed: true,
        },
        RunPolicy::BestEffort { min_fraction: 0.0 },
    ] {
        let err = q
            .run_with_options(&db, 10, 1, &RunOptions::policy(policy))
            .unwrap_err();
        assert!(
            err.to_string().contains("negative parameter"),
            "{policy:?}: {err}"
        );
    }
}

#[test]
fn composite_supervision_retries_and_degrades_gracefully() {
    let mut reg = Registry::new();
    reg.register_model(Arc::new(FnSimModel::new(
        ModelMetadata {
            name: "steady".into(),
            description: "always produces a valid series".into(),
            inputs: vec![],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["x".into()],
                tick: 1.0,
            },
            params: vec![],
            perf: PerfStats::default(),
        },
        |_inputs, _params, rng| {
            use rand::Rng as _;
            let v: f64 = rng.gen();
            Ok(TimeSeries::univariate(
                "x",
                vec![0.0, 1.0],
                vec![v, v + 1.0],
            )?)
        },
    )));
    let mut comp = CompositeModel::new();
    comp.add_model("steady");
    let plan = comp.plan(&reg).unwrap();

    // Retry: the injected panic is contained and the repetition recovers
    // on a fresh sub-seed, so all repetitions produce samples.
    let opts = RunOptions::policy(RunPolicy::Retry {
        max_attempts: 2,
        reseed: true,
    })
    .with_faults(FaultPlan::new().fail_on(2, 0, FaultKind::Panic));
    let (out, report) = plan
        .run_monte_carlo_supervised(&ParamAssignment::new(), 6, 3, |_| 1.0, &opts)
        .unwrap();
    assert_eq!(out.samples.len(), 6);
    assert_eq!(report.retried, 1);
    assert!(!report.ci_widened);

    // BestEffort: the failing repetition is dropped and the ledger matches
    // the injected plan exactly.
    let faults = FaultPlan::new().fail_on(1, 0, FaultKind::Error);
    let opts =
        RunOptions::policy(RunPolicy::BestEffort { min_fraction: 0.5 }).with_faults(faults.clone());
    let (out, report) = plan
        .run_monte_carlo_supervised(&ParamAssignment::new(), 6, 3, |_| 1.0, &opts)
        .unwrap();
    assert_eq!(out.samples.len(), 5);
    assert_eq!(report.dropped, 1);
    assert!(report.ci_widened);
    assert_eq!(
        report.failure_keys(),
        faults.expected_failure_keys(&opts.policy)
    );
}

#[test]
fn particle_filter_degrades_gracefully_under_best_effort() {
    use model_data_ecosystems::assim::pf::{BootstrapProposal, ParticleFilter};
    use model_data_ecosystems::assim::wildfire::default_scenario;
    use model_data_ecosystems::numeric::rng::rng_from_seed;

    let model = default_scenario();
    let mut rng = rng_from_seed(11);
    let (_truth, obs) = model.simulate_truth(6, &mut rng);
    let faults = FaultPlan::new().fail_on(3, 0, FaultKind::Nan);
    let opts =
        RunOptions::policy(RunPolicy::BestEffort { min_fraction: 0.5 }).with_faults(faults.clone());
    let (steps, report) = ParticleFilter::new(40, 1)
        .run_supervised(&model, &BootstrapProposal, &obs, &opts)
        .unwrap();
    // Output shape is preserved: one step per observation even though one
    // assimilation step was dropped.
    assert_eq!(steps.len(), 6);
    assert_eq!(report.dropped, 1);
    assert!(report.ci_widened);
    assert_eq!(
        report.failure_keys(),
        faults.expected_failure_keys(&opts.policy)
    );
    // The dropped step is visibly degraded, not silently wrong: the prior
    // particles carry forward, ESS is zeroed, evidence is NaN.
    assert_eq!(steps[3].ess, 0.0);
    assert!(steps[3].ln_evidence_increment.is_nan());
}

#[test]
fn invalid_budget_is_a_fatal_typed_error() {
    use model_data_ecosystems::numeric::{ErrorClass as _, Severity};
    let err = model_data_ecosystems::simopt::budget::n_max(1000.0, 2.0, 10.0, 1.0).unwrap_err();
    assert!(err.to_string().contains("(0, 1]"), "{err}");
    // Budget misconfiguration would fail identically on every attempt.
    assert_eq!(err.severity(), Severity::Fatal);
}
