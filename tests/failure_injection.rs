//! Failure injection: errors raised deep inside Monte Carlo loops,
//! composite executions, and parallel workers must surface as typed errors
//! — never panics, never silently wrong numbers.

use model_data_ecosystems::core::composite::{CompositeModel, ParamAssignment};
use model_data_ecosystems::core::registry::{
    FnSimModel, ModelMetadata, PerfStats, PortSpec, Registry,
};
use model_data_ecosystems::core::CoreError;
use model_data_ecosystems::harmonize::series::TimeSeries;
use model_data_ecosystems::mcdb::mc::MonteCarloQuery;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::{AggFunc, AggSpec};
use model_data_ecosystems::mcdb::schema::Schema;
use model_data_ecosystems::mcdb::vg::{OutputCardinality, VgFunction};
use std::sync::Arc;

/// A VG function that errors whenever its parameter is negative.
#[derive(Debug)]
struct FragileVg;

impl VgFunction for FragileVg {
    fn name(&self) -> &str {
        "Fragile"
    }

    fn output_schema(&self) -> Schema {
        Schema::from_pairs(&[("VALUE", DataType::Float)]).unwrap()
    }

    fn arity(&self) -> Option<usize> {
        Some(1)
    }

    fn cardinality(&self) -> OutputCardinality {
        OutputCardinality::Fixed(1)
    }

    fn generate(
        &self,
        params: &[Value],
        _rng: &mut model_data_ecosystems::numeric::rng::Rng,
    ) -> model_data_ecosystems::mcdb::Result<Vec<Vec<Value>>> {
        let p = params[0].as_f64()?;
        if p < 0.0 {
            return Err(model_data_ecosystems::mcdb::McdbError::invalid_plan(
                "negative parameter reached the stochastic model",
            ));
        }
        Ok(vec![vec![Value::Float(p)]])
    }
}

#[test]
fn vg_failure_surfaces_from_monte_carlo_loop() {
    let mut db = Catalog::new();
    db.insert(
        Table::build("T", &[("P", DataType::Float)])
            .row(vec![Value::from(1.0)])
            .row(vec![Value::from(-1.0)]) // poison row
            .finish()
            .unwrap(),
    );
    let spec = RandomTableSpec::builder("OUT")
        .for_each(Plan::scan("T"))
        .with_vg(Arc::new(FragileVg))
        .vg_params_exprs(&[Expr::col("P")])
        .select(&[("V", Expr::col("VALUE"))])
        .build()
        .unwrap();
    let q = MonteCarloQuery::new(
        vec![spec],
        Plan::scan("OUT").aggregate(&[], vec![AggSpec::new("S", AggFunc::Sum, Expr::col("V"))]),
    );
    let err = q.run(&db, 10, 1).unwrap_err();
    assert!(err.to_string().contains("negative parameter"), "{err}");
    // The parallel path surfaces the same error instead of hanging or
    // panicking a worker.
    let err = q.run_parallel(&db, 10, 1, 4).unwrap_err();
    assert!(err.to_string().contains("negative parameter"), "{err}");
}

#[test]
fn composite_model_failure_surfaces_with_context() {
    let mut reg = Registry::new();
    reg.register_model(Arc::new(FnSimModel::new(
        ModelMetadata {
            name: "flaky".into(),
            description: "fails after 2 ticks".into(),
            inputs: vec![],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["x".into()],
                tick: 1.0,
            },
            params: vec![],
            perf: PerfStats::default(),
        },
        |_inputs, _params, rng| {
            use rand::Rng as _;
            if rng.gen::<f64>() < 0.5 {
                // Structural failure inside the model: invalid series.
                Ok(TimeSeries::univariate("x", vec![0.0, 0.0], vec![1.0, 2.0])?)
            } else {
                Ok(TimeSeries::univariate("x", vec![0.0, 1.0], vec![1.0, 2.0])?)
            }
        },
    )));
    let mut comp = CompositeModel::new();
    comp.add_model("flaky");
    let plan = comp.plan(&reg).unwrap();
    // Across enough repetitions the flaky branch triggers; the error is a
    // typed harmonization error, not a panic.
    let result = plan.run_monte_carlo(&ParamAssignment::new(), 50, 3, |_| 0.0);
    match result {
        Err(CoreError::Harmonize(e)) => {
            assert!(e.to_string().contains("strictly increasing"), "{e}");
        }
        other => panic!("expected a harmonization error, got {other:?}"),
    }
}

#[test]
fn unknown_model_in_composite_is_reported_at_plan_time() {
    let reg = Registry::new();
    let mut comp = CompositeModel::new();
    comp.add_model("ghost");
    match comp.plan(&reg) {
        Err(CoreError::NotRegistered { kind, name }) => {
            assert_eq!(kind, "model");
            assert_eq!(name, "ghost");
        }
        Err(other) => panic!("expected NotRegistered, got {other:?}"),
        Ok(_) => panic!("expected NotRegistered, got a valid plan"),
    }
}

#[test]
fn sql_runtime_errors_are_typed() {
    let mut db = Catalog::new();
    db.insert(
        Table::build("t", &[("a", DataType::Int)])
            .row(vec![Value::from(1)])
            .finish()
            .unwrap(),
    );
    // Unknown column: caught at bind time with the available columns
    // listed.
    let err = db.sql("SELECT b FROM t").unwrap_err();
    assert!(err.to_string().contains('b'), "{err}");
    // Unknown table.
    let err = db.sql("SELECT * FROM nope").unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");
    // Type error in a predicate.
    let err = db.sql("SELECT * FROM t WHERE a + 1").unwrap_err();
    assert!(err.to_string().to_lowercase().contains("bool"), "{err}");
}
