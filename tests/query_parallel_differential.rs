//! Differential fuzz + determinism suite for morsel-parallel query
//! execution (ISSUE 9).
//!
//! Contract under test: the morsel-driven parallel executor is
//! **bit-identical** to sequential execution at any thread count — same
//! rows (floats compared by `to_bits`), same errors, and the same
//! deterministic span ledger (every span field except the `*_nanos`
//! wall-clock ones) — over both memory-backed and paged tables. A
//! seeded generated-SQL corpus (filters, equi-joins across NULL keys,
//! group-bys, ORDER BY/LIMIT) is executed:
//!
//! * sequential (`threads = 1`) vs 2/4/8-thread morsel-parallel,
//! * vs the row-at-a-time legacy engine (`query_unoptimized`) as the
//!   semantic oracle,
//! * on a memory catalog and on its paged twin (small pages, shared
//!   buffer pool), with morsels shrunk to 64 lanes so a ~1000-row table
//!   decomposes into dozens of morsels (including a non-multiple-of-64
//!   tail).
//!
//! The corpus is keyed off `MDE_CHAOS_SEED` (CI sweeps a small matrix)
//! but is fully deterministic for a given seed.

use model_data_ecosystems::core::obs::{MemorySink, SpanRecord, Tracer};
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::sql::plan_from_sql;
use model_data_ecosystems::mcdb::storage::BufferPool;
use model_data_ecosystems::mcdb::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("MDE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(23)
}

/// Deterministic LCG (PCG-style multiplier): the corpus is a pure
/// function of the chaos seed.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

static TWIN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Star-schema corpus catalog: a fact table with NULLs sprinkled into
/// the join key and the float measure, plus a small dimension with a
/// NULL key row. `n_rows` is deliberately not a multiple of 64 so the
/// last morsel is a partial tail.
fn corpus_catalog(seed: u64, n_rows: usize) -> Catalog {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut db = Catalog::new();
    db.insert(
        Table::build(
            "FACT",
            &[
                ("K", DataType::Int),
                ("V", DataType::Float),
                ("Q", DataType::Int),
                ("TAG", DataType::Str),
            ],
        )
        .rows((0..n_rows).map(|i| {
            let r = next(&mut state);
            let k = if r.is_multiple_of(13) {
                Value::Null
            } else {
                Value::from((r % 6) as i64)
            };
            let v = if r.is_multiple_of(17) {
                Value::Null
            } else {
                // Mixed magnitudes and signs, incl. exact negative zero.
                match r % 5 {
                    0 => Value::from(-0.0f64),
                    1 => Value::from((r % 1000) as f64 * 1e-3),
                    2 => Value::from(-((r % 97) as f64) * 3.5),
                    3 => Value::from((r % 7) as f64 * 1e6),
                    _ => Value::from(i as f64 - 0.5),
                }
            };
            vec![
                k,
                v,
                Value::from((r % 29) as i64 - 14),
                Value::from(["alpha", "beta", "gamma"][(r % 3) as usize]),
            ]
        }))
        .finish()
        .unwrap(),
    );
    db.insert(
        Table::build("DIM", &[("K", DataType::Int), ("LABEL", DataType::Str)])
            .rows((0..6).map(|j| {
                let k = if j == 0 {
                    Value::Null
                } else {
                    Value::from(j as i64)
                };
                vec![k, Value::from(["none", "lo", "mid", "hi", "top", "max"][j])]
            }))
            .finish()
            .unwrap(),
    );
    db
}

/// One SQL statement from the seeded corpus: filters (SIMD fast path on
/// Int/Float literals and the generic expression path), equi-joins over
/// the NULL-bearing key, group-bys with mixed aggregates, ORDER BY and
/// LIMIT.
fn generated_sql(state: &mut u64) -> String {
    let cmp = ["=", "<>", "<", "<=", ">", ">="][(next(state) % 6) as usize];
    let flit = (next(state) % 200) as f64 * 0.5 - 50.0;
    let ilit = (next(state) % 29) as i64 - 14;
    let limit = 1 + next(state) % 40;
    match next(state) % 8 {
        // SIMD float-literal filter fast path.
        0 => format!("SELECT K, V FROM FACT WHERE V {cmp} {flit}"),
        // SIMD int-literal filter fast path.
        1 => format!("SELECT K, Q FROM FACT WHERE Q {cmp} {ilit}"),
        // Generic predicate path (arithmetic + boolean connectives).
        2 => format!("SELECT K, V, Q FROM FACT WHERE V * 2 {cmp} {flit} OR Q + 1 = {ilit}"),
        // Join across NULL keys, then filter.
        3 => format!("SELECT LABEL, V FROM FACT JOIN DIM ON K = K WHERE V {cmp} {flit}"),
        // Join + ORDER BY + LIMIT.
        4 => format!(
            "SELECT LABEL, Q FROM FACT JOIN DIM ON K = K ORDER BY Q ASC, LABEL ASC LIMIT {limit}"
        ),
        // Group-by with mixed aggregates (Sum order-sensitivity probe).
        5 => "SELECT K, COUNT(*) AS N, SUM(V) AS S, MIN(Q) AS LO, MAX(V) AS HI \
              FROM FACT GROUP BY K ORDER BY K ASC"
            .to_string(),
        // Filtered group-by.
        6 => format!(
            "SELECT TAG, COUNT(*) AS N, SUM(Q) AS S FROM FACT \
             WHERE Q {cmp} {ilit} GROUP BY TAG ORDER BY TAG ASC"
        ),
        // Projection arithmetic + sort + limit.
        _ => format!(
            "SELECT K, V / 3 AS R, SQRT(ABS(V)) AS RT FROM FACT \
             ORDER BY R DESC LIMIT {limit}"
        ),
    }
}

/// Canonical row rendering with float **bit** equality (`to_bits`), so
/// `-0.0` vs `0.0` or differently-rounded sums can never slip through.
fn canon_rows(t: &Table) -> Vec<Vec<String>> {
    t.rows()
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Int(i) => format!("I:{i}"),
                    Value::Float(f) => format!("F:{:016x}", f.to_bits()),
                    Value::Str(s) => format!("S:{s}"),
                    Value::Bool(b) => format!("B:{b}"),
                    Value::Null => "N".to_string(),
                })
                .collect()
        })
        .collect()
}

/// The deterministic half of the span ledger: every span (id, parent,
/// name, fields) with the `*_nanos` wall-clock fields stripped.
/// Everything that remains must be bit-identical across thread counts.
fn deterministic_ledger(records: &[SpanRecord]) -> Vec<String> {
    records
        .iter()
        .map(|r| {
            let fields: Vec<String> = r
                .fields
                .iter()
                .filter(|(k, _)| !k.ends_with("_nanos"))
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("{}#{}<-{}{{{}}}", r.name, r.id, r.parent, fields.join(", "))
        })
        .collect()
}

/// Execute `plan` on `db` at `threads` workers with 64-lane morsels,
/// returning the result (canonical rows or error text) and the
/// deterministic ledger.
#[allow(clippy::type_complexity)]
fn run_at(
    db: &Catalog,
    plan: &Plan,
    threads: usize,
) -> (Result<Vec<Vec<String>>, String>, Vec<String>) {
    let mut db = db.clone();
    db.set_exec_config(ExecConfig {
        threads,
        morsel_rows: 64,
    });
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::new(sink.clone());
    let out = db
        .query_traced(plan, &tracer)
        .map(|t| canon_rows(&t))
        .map_err(|e| e.to_string());
    (out, deterministic_ledger(&sink.records()))
}

/// Paged twin under a fresh scratch dir: small pages so the fact table
/// spans many page frames, pool big enough that 8 concurrently-pinning
/// workers never exhaust it.
fn paged_twin(db: &Catalog) -> (Catalog, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "mde_qpar_{}_{}",
        std::process::id(),
        TWIN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let pool = BufferPool::new(24);
    let paged = db.to_paged(&dir, 1024, pool).unwrap();
    (paged, dir)
}

/// The core differential loop shared by the Mem and Paged suites:
/// sequential vs 2/4/8 threads, row-oracle cross-check, ledger equality.
fn assert_corpus_invariant(db: &Catalog, oracle: &Catalog, n_queries: usize, tag: &str) {
    let mut state = chaos_seed() ^ 0x5851_f42d_4c95_7f2d;
    let mut executed = 0usize;
    for case in 0..n_queries {
        let sql = generated_sql(&mut state);
        let plan = match plan_from_sql(&sql) {
            Ok(p) => p,
            Err(_) => continue,
        };
        // Warm the shared batch cache first: `cache_hit` is a
        // deterministic function of catalog state, and comparing a cold
        // first run against warm reruns would flag exactly that state
        // change, not a thread-count divergence.
        let _ = db.query(&plan);
        let (seq, seq_ledger) = run_at(db, &plan, 1);
        for threads in [2usize, 4, 8] {
            let (par, par_ledger) = run_at(db, &plan, threads);
            assert_eq!(
                seq, par,
                "[{tag}] case {case}: rows diverged at {threads} threads for {sql}"
            );
            assert_eq!(
                seq_ledger, par_ledger,
                "[{tag}] case {case}: deterministic ledger diverged at {threads} threads for {sql}"
            );
        }
        // Row-at-a-time oracle: identical rows on success, failure
        // status agreement otherwise (the legacy engine's error text may
        // name the same defect differently).
        match (&seq, oracle.query_unoptimized(&plan)) {
            (Ok(rows), Ok(oracle_table)) => {
                assert_eq!(
                    rows,
                    &canon_rows(&oracle_table),
                    "[{tag}] case {case}: vectorized vs row oracle diverged for {sql}"
                );
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!(
                "[{tag}] case {case}: status diverged vs row oracle for {sql}: \
                 vectorized={:?} oracle_ok={}",
                a.as_ref().map(|r| r.len()),
                b.is_ok()
            ),
        }
        executed += 1;
    }
    assert!(
        executed >= n_queries / 2,
        "[{tag}] corpus degenerated: only {executed}/{n_queries} statements parsed"
    );
}

#[test]
fn generated_sql_corpus_bit_identical_across_thread_counts_mem() {
    let db = corpus_catalog(chaos_seed(), 997);
    assert_corpus_invariant(&db, &db, 40, "mem");
}

#[test]
fn generated_sql_corpus_bit_identical_across_thread_counts_paged() {
    let db = corpus_catalog(chaos_seed().wrapping_add(1), 997);
    let (paged, dir) = paged_twin(&db);
    // The paged twin must agree with itself across thread counts AND
    // with the in-memory row oracle.
    assert_corpus_invariant(&paged, &db, 40, "paged");
    drop(paged);
    std::fs::remove_dir_all(&dir).ok();
}

/// Paged vs Mem at every thread count: the storage backend must not
/// perturb parallel results either.
#[test]
fn paged_parallel_matches_mem_sequential() {
    let db = corpus_catalog(chaos_seed().wrapping_add(2), 640);
    let (paged, dir) = paged_twin(&db);
    let mut state = chaos_seed() ^ 0xda94_2042_e4dd_58b5;
    for _ in 0..24 {
        let sql = generated_sql(&mut state);
        let plan = match plan_from_sql(&sql) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let (mem_seq, _) = run_at(&db, &plan, 1);
        for threads in [1usize, 2, 4, 8] {
            let (paged_par, _) = run_at(&paged, &plan, threads);
            assert_eq!(
                mem_seq, paged_par,
                "paged@{threads}t diverged from mem@1t for {sql}"
            );
        }
    }
    drop(paged);
    std::fs::remove_dir_all(&dir).ok();
}

/// Repeating one query at one thread count is a fixed point: the
/// deterministic ledger never drifts run to run.
#[test]
fn ledger_is_stable_across_repeated_runs() {
    let db = corpus_catalog(chaos_seed().wrapping_add(3), 320);
    let plan =
        plan_from_sql("SELECT K, COUNT(*) AS N, SUM(V) AS S FROM FACT GROUP BY K ORDER BY K ASC")
            .unwrap();
    let _ = db.query(&plan); // warm the batch cache: `cache_hit` settles
    let (first, first_ledger) = run_at(&db, &plan, 8);
    for _ in 0..3 {
        let (again, again_ledger) = run_at(&db, &plan, 8);
        assert_eq!(first, again);
        assert_eq!(first_ledger, again_ledger);
    }
    // Sanity: the ledger actually carries the new deterministic
    // counters (morsels > 1 at 64-lane morsels over 320 rows).
    let root = first_ledger
        .iter()
        .find(|l| l.starts_with("query#"))
        .expect("root query span present");
    assert!(
        root.contains("query.morsels="),
        "root span must carry query.morsels: {root}"
    );
    assert!(
        root.contains("query.simd_lanes="),
        "root span must carry query.simd_lanes: {root}"
    );
    assert!(
        !root.contains("_nanos"),
        "wall-clock must be stripped from the deterministic ledger: {root}"
    );
}

/// NULL join keys never match (SQL semantics) regardless of morsel
/// decomposition: pin the exact row multiset through the parallel path.
#[test]
fn null_join_keys_drop_identically_in_parallel() {
    let db = corpus_catalog(chaos_seed().wrapping_add(4), 250);
    let plan = plan_from_sql("SELECT K, LABEL FROM FACT JOIN DIM ON K = K").unwrap();
    let (seq, _) = run_at(&db, &plan, 1);
    let rows = seq.expect("join executes");
    assert!(
        rows.iter().all(|r| r[0] != "N"),
        "a NULL key must never join"
    );
    for threads in [2usize, 4, 8] {
        let (par, _) = run_at(&db, &plan, threads);
        assert_eq!(Ok(rows.clone()), par, "join rows diverged at {threads}t");
    }
}

/// Errors raised mid-pipeline (an Int-vs-Str comparison the binder does
/// not reject, surfacing from `cmp_batch` inside morsel eval) carry
/// byte-identical messages at every thread count — the
/// lowest-morsel-wins error merge reproduces the sequential first error.
#[test]
fn typed_errors_are_thread_count_invariant() {
    let db = corpus_catalog(chaos_seed().wrapping_add(5), 300);
    let plan = plan_from_sql("SELECT K FROM FACT WHERE K < 'x'").unwrap();
    let (seq, _) = run_at(&db, &plan, 1);
    let err = seq.expect_err("Int vs Str comparison must fail");
    for threads in [2usize, 4, 8] {
        let (par, _) = run_at(&db, &plan, threads);
        assert_eq!(
            Err(err.clone()),
            par,
            "error text diverged at {threads} threads"
        );
    }
}
