//! Wildfire data assimilation — §3.2 of the paper and its Algorithm 2.
//!
//! A ground-truth fire spreads over a 32×32 terrain; a 5×5 grid of noisy
//! temperature sensors reports every step. Two scenarios:
//!
//! **A — well-specified model.** The tracker knows the ignition point.
//! The particle filter (bootstrap proposal, [56]) corrects the stochastic
//! spread noise and tracks the burning-cell count better than running the
//! simulation open loop — "more accurate estimates of the fire status than
//! could be obtained from either data source alone".
//!
//! **B — misspecified model.** The tracker believes the fire started on
//! the wrong side of the map. Now the transition density is far from the
//! optimal proposal and, as [56] reports, bootstrap accuracy degrades;
//! the sensor-aware proposal of [57] — igniting hot sensor cells and
//! extinguishing cool ones — recovers the fire's *location* (centroid)
//! far better.
//!
//! Run with: `cargo run --release --example wildfire_assimilation`

use model_data_ecosystems::assim::pf::{BootstrapProposal, ParticleFilter, StateSpaceModel};
use model_data_ecosystems::assim::proposal::SensorAwareProposal;
use model_data_ecosystems::assim::wildfire::{default_scenario, FireModel, FireState};
use model_data_ecosystems::numeric::rng::rng_from_seed;

/// Horizontal centroid of the fire footprint (burning + burned cells).
fn centroid_x(s: &FireState, width: usize) -> f64 {
    let (mut sum, mut n) = (0.0, 0.0);
    for (i, c) in s.cells.iter().enumerate() {
        if c.is_burning() || matches!(c, model_data_ecosystems::assim::wildfire::CellFire::Burned) {
            sum += (i % width) as f64;
            n += 1.0;
        }
    }
    if n > 0.0 {
        sum / n
    } else {
        width as f64 / 2.0
    }
}

fn main() {
    let steps = 20;
    let particles = 200;
    let truth_model = default_scenario(); // ignition (8, 16)
    let width = truth_model.config().width;
    let mut rng = rng_from_seed(2024);
    let (truth, observations) = truth_model.simulate_truth(steps, &mut rng);

    // ================= Scenario A: well-specified model =================
    println!("== Scenario A: correct model — PF vs open loop on burning-cell count ==");
    let mut open_rng = rng_from_seed(5);
    let mut open: Vec<FireState> = (0..particles)
        .map(|_| truth_model.sample_initial(&mut open_rng))
        .collect();
    let pf = ParticleFilter::new(particles, 9);
    let boot = pf.run(&truth_model, &BootstrapProposal, &observations);

    let (mut e_open, mut e_pf) = (0.0f64, 0.0f64);
    for t in 0..steps {
        if t > 0 {
            open = open
                .iter()
                .map(|s| truth_model.sample_transition(s, &mut open_rng))
                .collect();
        }
        let open_est =
            open.iter().map(|s| s.burning_count() as f64).sum::<f64>() / particles as f64;
        let pf_est = boot[t].estimate(|s| s.burning_count() as f64);
        let tru = truth[t].burning_count() as f64;
        e_open += (open_est - tru).abs();
        e_pf += (pf_est - tru).abs();
    }
    println!(
        "mean |burning-count error|: open loop {:.2}   PF (bootstrap) {:.2}",
        e_open / steps as f64,
        e_pf / steps as f64
    );
    println!(
        "assimilation cut the tracking error by {:.0}%\n",
        100.0 * (1.0 - e_pf / e_open)
    );

    // ================ Scenario B: misspecified ignition =================
    println!("== Scenario B: wrong ignition belief — bootstrap vs sensor-aware proposal ==");
    let mut wrong = truth_model.config().clone();
    wrong.ignition = (24, 16); // reality: (8, 16)
    let filter_model = FireModel::new(wrong, (5, 5), 8.0);

    let boot = pf.run(&filter_model, &BootstrapProposal, &observations);
    let aware = pf.run(
        &filter_model,
        &SensorAwareProposal {
            sensor_confidence: 0.8,
            ..SensorAwareProposal::default()
        },
        &observations,
    );

    println!("step  truth-centroid-x  bootstrap  sensor-aware");
    let (mut c_boot, mut c_aware) = (0.0f64, 0.0f64);
    for t in 0..steps {
        let tru = centroid_x(&truth[t], width);
        let b = boot[t].estimate(|s| centroid_x(s, width));
        let a = aware[t].estimate(|s| centroid_x(s, width));
        c_boot += (b - tru).abs();
        c_aware += (a - tru).abs();
        if t % 4 == 0 {
            println!("{t:>4}  {tru:>16.1}  {b:>9.1}  {a:>12.1}");
        }
    }
    println!(
        "\nmean |centroid error|: bootstrap {:.2} cells   sensor-aware {:.2} cells",
        c_boot / steps as f64,
        c_aware / steps as f64
    );
    println!(
        "the sensor-aware proposal of [57] recovers the fire location {:.0}% better",
        100.0 * (1.0 - c_aware / c_boot)
    );
}
