//! Quickstart: "data is dead without what-if models".
//!
//! The paper's opening claim is that descriptive analytics over existing
//! data cannot support decisions — the data must be combined with
//! stochastic models of how the world behaves. This example walks the
//! whole arc in one file:
//!
//! 1. load a small sales database (the "dead" data);
//! 2. run a descriptive query (what *was* revenue?);
//! 3. attach a stochastic demand model (a VG function, per MCDB §2.1)
//!    parametrized by the data;
//! 4. ask a *what-if* question — what happens to revenue under a 5% price
//!    increase? — and get a distribution with risk quantiles and a
//!    threshold decision, not a single number.
//!
//! Run with: `cargo run --example quickstart`

use model_data_ecosystems::core::whatif::WhatIfSession;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::{AggFunc, AggSpec};
use model_data_ecosystems::mcdb::vg::BayesianDemandVg;
use std::sync::Arc;

fn main() {
    // ---- 1. The data: customers with purchase histories, and the global
    // demand-model parameters fit from all customers (the paper's Bayesian
    // demand example).
    let customers = Table::build(
        "CUSTOMERS",
        &[
            ("CID", DataType::Int),
            ("REGION", DataType::Str),
            ("HIST_PERIODS", DataType::Float),
            ("HIST_UNITS", DataType::Float),
        ],
    )
    .rows((0..200).map(|i| {
        vec![
            Value::from(i),
            Value::from(if i % 3 == 0 { "east" } else { "west" }),
            Value::from(12.0),
            // Heterogeneous purchase histories: 12..72 units/year.
            Value::from(12.0 + (i % 6) as f64 * 12.0),
        ]
    }))
    .finish()
    .expect("static table");

    let demand_model = Table::build(
        "DEMAND_MODEL",
        &[("ALPHA", DataType::Float), ("BETA", DataType::Float)],
    )
    .row(vec![Value::from(3.0), Value::from(1.0)])
    .finish()
    .expect("static table");

    let mut session = WhatIfSession::new();
    session.add_data(customers).add_data(demand_model);

    // ---- 2. Descriptive analytics: the past.
    let history = session
        .describe(&Plan::scan("CUSTOMERS").aggregate(
            &["REGION"],
            vec![
                AggSpec::count_star("CUSTOMERS"),
                AggSpec::new("UNITS_LAST_YEAR", AggFunc::Sum, Expr::col("HIST_UNITS")),
            ],
        ))
        .expect("descriptive query");
    println!("== What the data says about the past ==\n{history}");

    // ---- 3. Attach the stochastic model: per-customer demand under a
    // given price, via the Gamma-Poisson Bayesian update of §2.1.
    let price = 10.5; // a 5% increase over the reference price of 10
    let spec = RandomTableSpec::builder("NEXT_PERIOD_SALES")
        .for_each(Plan::scan("CUSTOMERS"))
        .with_vg(Arc::new(BayesianDemandVg))
        .vg_params_query(Plan::scan("DEMAND_MODEL"))
        .vg_params_exprs(&[
            Expr::col("HIST_PERIODS"),
            Expr::col("HIST_UNITS"),
            Expr::lit(price),
            Expr::lit(10.0), // reference price
            Expr::lit(2.0),  // elasticity
        ])
        .select(&[
            ("CID", Expr::col("CID")),
            ("REGION", Expr::col("REGION")),
            ("UNITS", Expr::col("VALUE")),
        ])
        .build()
        .expect("valid spec");
    session.attach_stochastic(spec);

    // ---- 4. The what-if question: revenue from east-coast customers
    // under the price increase (the paper's exact example query shape).
    let east_revenue = Plan::scan("NEXT_PERIOD_SALES")
        .filter(Expr::col("REGION").eq(Expr::lit("east")))
        .project(&[("REV", Expr::col("UNITS").mul(Expr::lit(price)))])
        .aggregate(
            &[],
            vec![AggSpec::new("TOTAL", AggFunc::Sum, Expr::col("REV"))],
        );

    let result = session
        .what_if_parallel(&east_revenue, 1000, 42, 4)
        .expect("Monte Carlo run");

    println!("== What-if: east-coast revenue under a 5% price increase ==");
    println!("mean revenue        : {:10.0}", result.mean());
    let ci = result.mean_ci(0.95).expect("ci");
    println!("95% CI for the mean : [{:.0}, {:.0}]", ci.lo, ci.hi);
    println!(
        "5% / 95% quantiles  : {:10.0} / {:10.0}",
        result.quantile(0.05).expect("quantile"),
        result.quantile(0.95).expect("quantile"),
    );
    println!(
        "value-at-risk (q01) : {:10.0}",
        result.quantile(0.01).expect("quantile")
    );
    let target = 1_400.0;
    let decision = result
        .threshold_decision(target, 0.9, 0.95)
        .expect("threshold query");
    println!(
        "P(revenue > {target}) >= 90%?  {}",
        match decision {
            Some(true) => "YES (confidently)",
            Some(false) => "NO (confidently)",
            None => "inconclusive — run more iterations",
        }
    );
}
