//! The Monte Carlo database, driven entirely from SQL text — the paper's
//! own interface. Declares the §2.1 SBP stochastic table with the paper's
//! `CREATE TABLE … AS FOR EACH … WITH … SELECT` DDL, realizes it under
//! Monte Carlo, and analyzes it with plain SELECTs.
//!
//! Run with: `cargo run --example sql_interface`

use model_data_ecosystems::core::obs::{JsonlSink, Tracer};
use model_data_ecosystems::core::resilience::RunOptions;
use model_data_ecosystems::mcdb::mc::MonteCarloQuery;
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::PreparedQuery;
use model_data_ecosystems::mcdb::sql::{parse_create_random_table, plan_from_sql, VgRegistry};
use model_data_ecosystems::numeric::rng::rng_from_seed;
use std::sync::Arc;

fn main() {
    // ---- Ordinary tables.
    let mut db = Catalog::new();
    db.insert(
        Table::build(
            "PATIENTS",
            &[
                ("PID", DataType::Int),
                ("GENDER", DataType::Str),
                ("AGE", DataType::Int),
            ],
        )
        .rows((0..500).map(|i| {
            vec![
                Value::from(i),
                Value::from(if i % 2 == 0 { "F" } else { "M" }),
                Value::from(20 + (i * 7) % 60),
            ]
        }))
        .finish()
        .expect("static table"),
    );
    db.insert(
        Table::build(
            "SBP_PARAM",
            &[("MEAN", DataType::Float), ("STD", DataType::Float)],
        )
        .row(vec![Value::from(120.0), Value::from(15.0)])
        .finish()
        .expect("static table"),
    );

    // ---- The paper's stochastic-table DDL, verbatim shape.
    let ddl = "CREATE TABLE SBP_DATA(PID, GENDER, SBP) AS \
               FOR EACH PATIENTS \
               WITH Normal(SELECT MEAN, STD FROM SBP_PARAM) \
               SELECT PID, GENDER, AGE, VALUE AS SBP";
    println!("DDL:\n  {ddl}\n");
    let spec = parse_create_random_table(ddl, &VgRegistry::standard()).expect("valid DDL");

    // ---- One realization, inspected with SQL.
    let mut realized = db.clone();
    realized.insert(
        spec.realize(&db, &mut rng_from_seed(1))
            .expect("realization"),
    );
    let by_gender = realized
        .sql(
            "SELECT GENDER, COUNT(*) AS n, AVG(SBP) AS mean_sbp, MAX(SBP) AS max_sbp \
             FROM SBP_DATA GROUP BY GENDER ORDER BY GENDER",
        )
        .expect("query");
    println!("one realization, summarized by SQL:\n{by_gender}");

    // ---- Prepare once, run many: bind the analysis query to a physical
    // plan a single time, then execute the *same* prepared plan against a
    // fresh realization per replicate. This is exactly what the Monte Carlo
    // runners do internally — planning cost is paid once, not per replicate.
    let analysis =
        plan_from_sql("SELECT COUNT(*) AS n FROM SBP_DATA WHERE SBP >= 140 AND AGE > 50")
            .expect("valid SQL");
    let prepared_spec = spec.prepare(&db).expect("spec planning");
    let prepared_query = PreparedQuery::prepare(&analysis, &realized).expect("query planning");
    let mut rng = rng_from_seed(2);
    let mut counts = Vec::new();
    for _ in 0..5 {
        let mut scratch = db.clone();
        scratch.insert(prepared_spec.realize(&db, &mut rng).expect("realization"));
        let t = prepared_query
            .execute(&scratch)
            .expect("prepared execution");
        counts.push(t.rows()[0][0].clone());
    }
    println!("prepared plan, executed over 5 fresh realizations: {counts:?}\n");

    // ---- The same Monte Carlo question at scale: what is the distribution
    // of the hypertensive (SBP >= 140) count among patients over 50? The
    // runner prepares specs + query once and replicates execution.
    let question = "SELECT COUNT(*) AS n FROM SBP_DATA WHERE SBP >= 140 AND AGE > 50";
    let plan = plan_from_sql(question).expect("valid SQL");
    let mc = MonteCarloQuery::new(vec![spec], plan);
    let run = mc
        .run_parallel_with_options(&db, 500, 7, 4, &RunOptions::default())
        .expect("Monte Carlo run");
    let res = &run.result;
    println!("Monte Carlo over: {question}");
    println!(
        "  mean count: {:.1}   95% of realizations within [{:.0}, {:.0}]",
        res.mean(),
        res.quantile(0.025).expect("quantile"),
        res.quantile(0.975).expect("quantile"),
    );
    let ci = res.mean_ci(0.95).expect("ci");
    println!("  95% CI for the mean: [{:.1}, {:.1}]", ci.lo, ci.hi);

    // ---- Every run carries a metrics ledger: deterministic counters and
    // value histograms (bit-identical at any thread count) plus
    // out-of-band latency/IO observations.
    println!("\nrun metrics ledger:\n{}", run.report.metrics.render());

    // ---- Optionally attach a structured trace: set MDE_TRACE_JSONL to a
    // file path to capture one traced execution of the analysis query as
    // one JSON object per span.
    if let Ok(path) = std::env::var("MDE_TRACE_JSONL") {
        let file = std::fs::File::create(&path).expect("trace file");
        let sink = Arc::new(JsonlSink::new(file));
        let tracer = Tracer::new(sink);
        realized
            .query_traced(&analysis, &tracer)
            .expect("traced query");
        drop(tracer);
        println!("span trace written to {path}");
    }
}
