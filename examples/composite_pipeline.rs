//! A Splash-style composite model: register models with metadata, detect
//! mismatches, let the platform compile harmonization transformations, run
//! Monte Carlo repetitions, and then *optimize the run* with §2.3's result
//! caching.
//!
//! The composite is the paper's Figure 2 shape: a (slow, stochastic)
//! demand model feeding a (fast) revenue model, with a deliberate daily →
//! weekly time-granularity mismatch between them.
//!
//! Run with: `cargo run --example composite_pipeline`

use model_data_ecosystems::core::composite::{CompositeModel, Mismatch, ParamAssignment};
use model_data_ecosystems::core::experiment::{bridge_chain_to_simopt, rc_plan, Experiment};
use model_data_ecosystems::core::registry::{
    FnSimModel, ModelMetadata, ParamSpec, PerfStats, PortSpec, Registry,
};
use model_data_ecosystems::harmonize::series::TimeSeries;
use model_data_ecosystems::metamodel::design::full_factorial;
use model_data_ecosystems::numeric::dist::{Distribution, Normal};
use std::sync::Arc;

fn register_models(reg: &mut Registry) {
    // Daily demand source: base level, weekly seasonality, noise.
    reg.register_model(Arc::new(FnSimModel::new(
        ModelMetadata {
            name: "demand".into(),
            description: "daily demand with weekly seasonality".into(),
            inputs: vec![],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["demand".into()],
                tick: 1.0,
            },
            params: vec![
                ParamSpec {
                    name: "base".into(),
                    default: 100.0,
                    lo: 60.0,
                    hi: 140.0,
                },
                ParamSpec {
                    name: "noise".into(),
                    default: 8.0,
                    lo: 1.0,
                    hi: 20.0,
                },
            ],
            perf: PerfStats {
                cost: 25.0,
                ..PerfStats::default()
            },
        },
        |_inputs, params, rng| {
            let noise = Normal::new(0.0, params[1].max(1e-6))?;
            let times: Vec<f64> = (0..56).map(|t| t as f64).collect();
            let values: Vec<f64> = times
                .iter()
                .map(|t| {
                    (params[0] + 15.0 * (t * std::f64::consts::TAU / 7.0).sin() + noise.sample(rng))
                        .max(0.0)
                })
                .collect();
            Ok(TimeSeries::univariate("demand", times, values)?)
        },
    )));

    // Weekly revenue sink.
    reg.register_model(Arc::new(FnSimModel::new(
        ModelMetadata {
            name: "revenue".into(),
            description: "weekly revenue".into(),
            inputs: vec![PortSpec {
                name: "in".into(),
                channels: vec!["demand".into()],
                tick: 7.0,
            }],
            output: PortSpec {
                name: "out".into(),
                channels: vec!["revenue".into()],
                tick: 7.0,
            },
            params: vec![ParamSpec {
                name: "price".into(),
                default: 2.5,
                lo: 1.0,
                hi: 5.0,
            }],
            perf: PerfStats {
                cost: 1.0,
                ..PerfStats::default()
            },
        },
        |inputs, params, rng| {
            // Stochastic conversion: market execution noise on top of the
            // demand signal, so the composite is doubly stochastic (the
            // §2.3 setting where result caching pays off).
            let market_noise = Normal::new(0.0, 60.0)?;
            let demand = inputs[0].channel("demand")?;
            Ok(TimeSeries::univariate(
                "revenue",
                inputs[0].times().to_vec(),
                demand
                    .iter()
                    .map(|d| (d * params[0] + market_noise.sample(rng)).max(0.0))
                    .collect(),
            )?)
        },
    )));
}

fn mean_revenue(ts: &TimeSeries) -> f64 {
    let v = ts.channel("revenue").expect("revenue channel");
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    let mut registry = Registry::new();
    register_models(&mut registry);
    println!("registered models: {:?}", registry.model_names());

    // ---- Compose, detect mismatches, plan.
    let mut composite = CompositeModel::new();
    let demand = composite.add_model("demand");
    let revenue = composite.add_model("revenue");
    composite.connect(demand, revenue, 0);

    println!("\n== Mismatch detection (Splash registration-time diagnostics) ==");
    for m in composite.detect_mismatches(&registry).expect("metadata") {
        match m {
            Mismatch::TickMismatch { source_tick, target_tick, .. } => println!(
                "tick mismatch: source emits every {source_tick}, target expects every {target_tick} \
                 -> auto-inserting time alignment (aggregation)"
            ),
            Mismatch::MissingChannel { channel, .. } => {
                println!("missing channel `{channel}` — needs an explicit mapping")
            }
        }
    }

    let plan = composite.plan(&registry).expect("composite plans");
    let mc = plan
        .run_monte_carlo(&ParamAssignment::new(), 200, 11, mean_revenue)
        .expect("Monte Carlo run");
    println!(
        "\nmean weekly revenue over 200 reps: {:.1} (sd {:.1})",
        mc.summary.mean(),
        mc.summary.sample_std_dev()
    );

    // ---- Experiment management: unified parameter view + main effects.
    let experiment = Experiment::new(&registry, composite).expect("experiment");
    println!("\n== Unified parameter view ==");
    for f in experiment.factors() {
        println!(
            "{:>10}.{:<6} range [{}, {}] default {}",
            f.model, f.param, f.range.0, f.range.1, f.default
        );
    }
    let design = full_factorial(experiment.factors().len());
    let me = experiment
        .main_effects(&design, 10, 13, mean_revenue)
        .expect("design run");
    println!("\n== Main effects (2^3 factorial, 10 reps/point) ==");
    print!("{}", me.render_ascii(&["base", "noise", "price"]));

    // ---- Run optimization: result caching per §2.3.
    let bridged = bridge_chain_to_simopt(
        &registry,
        "demand",
        "revenue",
        ParamAssignment::new(),
        mean_revenue,
    )
    .expect("two-model chain bridges");
    let (stats, alpha) = rc_plan(&bridged, 400, 17, 100_000);
    println!("\n== Result-caching optimization (paper §2.3) ==");
    println!(
        "pilot statistics: c1={:.1} c2={:.1} V1={:.2} V2={:.2}",
        stats.c1, stats.c2, stats.v1, stats.v2
    );
    println!("optimal replication fraction alpha* = {alpha:.3}");
    let budget = 5_000.0;
    let opt = model_data_ecosystems::simopt::budget::run_under_budget(&bridged, budget, alpha, 3)
        .expect("valid budget configuration")
        .expect("budget affords runs");
    let naive = model_data_ecosystems::simopt::budget::run_under_budget(&bridged, budget, 1.0, 3)
        .expect("valid budget configuration")
        .expect("budget affords runs");
    println!(
        "under budget {budget}: alpha* affords n={} M2-replications (m={} M1 runs); \
         naive alpha=1 affords n={}",
        opt.n, opt.m, naive.n
    );
    println!(
        "estimates agree: theta_hat(alpha*) = {:.1}, theta_hat(1) = {:.1}",
        opt.theta_hat, naive.theta_hat
    );
}
