//! Indemics-style epidemic simulation with a query-driven intervention —
//! the paper's Algorithm 1 ("Vaccinate preschoolers if more than 1% are
//! sick"), end to end.
//!
//! The compute-intensive network transition engine plays the HPC role; at
//! every observation time the population is exported as relational tables
//! and the intervention policy is expressed as SQL-style queries over
//! them, exactly as §2.4 describes.
//!
//! Run with: `cargo run --example epidemic_intervention`

use model_data_ecosystems::abs::epidemic::{
    run_with_policy, EpidemicConfig, EpidemicModel, HealthState, Intervention, Person,
};
use model_data_ecosystems::mcdb::prelude::*;
use model_data_ecosystems::mcdb::query::AggSpec;

fn preschool_attack_rate(m: &EpidemicModel) -> f64 {
    let kids: Vec<&Person> = m
        .people()
        .iter()
        .filter(|p| (0..=4).contains(&p.age))
        .collect();
    let ever = kids
        .iter()
        .filter(|p| {
            matches!(
                p.state,
                HealthState::Infected { .. } | HealthState::Recovered
            )
        })
        .count();
    ever as f64 / kids.len().max(1) as f64
}

fn main() {
    let cfg = EpidemicConfig {
        transmission_rate: 0.05,
        initial_infected: 10,
        ..EpidemicConfig::default()
    };
    let population = 2_000;
    let days = 150;
    let seed = 7;

    // ---- Baseline: no intervention.
    let mut baseline = EpidemicModel::synthetic(cfg, population, seed);
    let base_hist = run_with_policy(&mut baseline, days, seed ^ 1, |_catalog, _day| vec![])
        .expect("baseline run");

    // ---- Algorithm 1 from the paper, as a query-driven policy.
    let mut protected = EpidemicModel::synthetic(cfg, population, seed);
    let mut triggered_on: Option<u32> = None;
    let pol_hist = run_with_policy(&mut protected, days, seed ^ 1, |catalog, day| {
        // CREATE TABLE Preschool(pid) AS
        //   SELECT pid FROM Person WHERE 0 <= age <= 4
        let preschool = Plan::scan("Person").filter(
            Expr::col("age")
                .ge(Expr::lit(0))
                .and(Expr::col("age").le(Expr::lit(4))),
        );
        // DEFINE nPreschool AS (SELECT COUNT(pid) FROM Preschool)
        let n_preschool = catalog
            .query(
                &preschool
                    .clone()
                    .aggregate(&[], vec![AggSpec::count_star("n")]),
            )
            .and_then(|t| t.scalar())
            .and_then(|v| v.as_i64())
            .expect("count query");
        // WITH InfectedPreschool AS (SELECT pid FROM Preschool ⋈ InfectedPerson)
        let n_infected = catalog
            .query(
                &preschool
                    .clone()
                    .join(Plan::scan("InfectedPerson"), &[("pid", "pid")])
                    .aggregate(&[], vec![AggSpec::count_star("n")]),
            )
            .and_then(|t| t.scalar())
            .and_then(|v| v.as_i64())
            .expect("join-count query");
        // IF nInfectedPreschool > 1% × nPreschool THEN vaccinate Preschool.
        if n_preschool > 0 && n_infected * 100 > n_preschool {
            if triggered_on.is_none() {
                triggered_on = Some(day);
            }
            let pids: Vec<i64> = catalog
                .query(&preschool.project(&[("pid", Expr::col("pid"))]))
                .expect("pid projection")
                .column("pid")
                .expect("pid column")
                .iter()
                .map(|v| v.as_i64().expect("int pid"))
                .collect();
            vec![Intervention::Vaccinate(pids)]
        } else {
            vec![]
        }
    })
    .expect("policy run");

    // ---- Report.
    println!("day  infected(baseline)  infected(policy)");
    for (b, p) in base_hist.iter().zip(&pol_hist).step_by(10) {
        println!("{:>3}  {:>18}  {:>16}", b.0, b.1, p.1);
    }
    if let Some(d) = triggered_on {
        println!("\npolicy triggered on day {d} (first day preschool infections > 1%)");
    } else {
        println!("\npolicy never triggered (epidemic stayed below the threshold)");
    }
    println!(
        "\npreschool attack rate: baseline {:.1}%  vs  with Algorithm 1 {:.1}%",
        100.0 * preschool_attack_rate(&baseline),
        100.0 * preschool_attack_rate(&protected),
    );
    println!(
        "overall attack rate  : baseline {:.1}%  vs  with Algorithm 1 {:.1}%",
        100.0 * baseline.attack_rate(),
        100.0 * protected.attack_rate(),
    );
}
