//! Calibrating an agent-based model against data — §3.1 of the paper.
//!
//! "Agent-based simulations can be viewed as a powerful tool for data
//! integration … The key is then to calibrate the model … to approximately
//! match existing datasets."
//!
//! A ground-truth consumer-market ABS (known θ*) generates "observed"
//! summary statistics; a blind calibration then recovers θ by the method
//! of simulated moments, comparing the three optimizers §3.1 discusses at
//! matched simulation budgets: Nelder–Mead, a genetic algorithm
//! (Fabretti), and the DOE + kriging surrogate (Salle & Yildizoglu).
//!
//! Run with: `cargo run --release --example market_calibration`

use model_data_ecosystems::abs::market::{MarketConfig, MarketModel, MarketParams};
use model_data_ecosystems::calibrate::kriging_cal::{kriging_calibrate, KrigingCalConfig};
use model_data_ecosystems::calibrate::msm::{MsmProblem, Simulator};
use model_data_ecosystems::calibrate::optim::{genetic_algorithm, Bounds, GaConfig};
use model_data_ecosystems::numeric::rng::rng_from_seed;

fn main() {
    let cfg = MarketConfig::default();
    let theta_star = MarketParams {
        media_reach: 0.02,
        wom_strength: 0.05,
        purchase_propensity: 0.15,
    };

    // "Observed data": summary statistics of the true market, averaged
    // over several independent observations (a brand tracker + sales data
    // + social tracking, reduced to moments).
    let mut observed = vec![0.0; 4];
    let obs_reps = 20;
    for seed in 0..obs_reps {
        let s = MarketModel::simulate_summary(cfg, &theta_star.to_vec(), 1000 + seed);
        for (o, v) in observed.iter_mut().zip(s) {
            *o += v / obs_reps as f64;
        }
    }
    println!("observed statistics (awareness, adoption, t-half, wom-share):");
    println!("  {observed:.4?}");
    println!("true theta*: {:?}\n", theta_star.to_vec());

    let simulator: &Simulator =
        &|theta: &[f64], seed: u64| MarketModel::simulate_summary(cfg, theta, seed);
    let bounds = Bounds::new(vec![(0.005, 0.2), (0.005, 0.3), (0.05, 0.8)]).expect("valid bounds");

    // ---- Method 1: MSM + Nelder-Mead.
    let problem = MsmProblem::new(observed.clone(), simulator, 5, 99);
    let nm = problem.calibrate(&[0.05, 0.05, 0.3], 120).expect("NM run");
    let nm_evals = problem.simulator_evals();

    // ---- Method 2: MSM objective + genetic algorithm.
    let problem_ga = MsmProblem::new(observed.clone(), simulator, 5, 99);
    let mut rng = rng_from_seed(5);
    let ga = genetic_algorithm(
        |theta| problem_ga.objective(theta),
        &bounds,
        &GaConfig {
            population: 16,
            generations: 8,
            ..GaConfig::default()
        },
        &mut rng,
    );
    let ga_evals = problem_ga.simulator_evals();

    // ---- Method 3: DOE + kriging surrogate.
    let problem_kc = MsmProblem::new(observed.clone(), simulator, 5, 99);
    let mut rng = rng_from_seed(6);
    let kc = kriging_calibrate(
        |theta, _rep| problem_kc.objective(theta),
        &bounds,
        &KrigingCalConfig {
            design_runs: 33,
            infill_rounds: 5,
            ..KrigingCalConfig::default()
        },
        &mut rng,
    )
    .expect("kriging calibration");
    let kc_evals = problem_kc.simulator_evals();

    // ---- Report.
    let err = |x: &[f64]| {
        x.iter()
            .zip(theta_star.to_vec())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    };
    println!(
        "method            theta-hat                              J(theta)   sim-evals  ||err||"
    );
    println!(
        "nelder-mead       [{:.4}, {:.4}, {:.4}]   {:>10.6}  {:>9}  {:.4}",
        nm.x[0],
        nm.x[1],
        nm.x[2],
        nm.fx,
        nm_evals,
        err(&nm.x)
    );
    println!(
        "genetic (Fabretti)[{:.4}, {:.4}, {:.4}]   {:>10.6}  {:>9}  {:.4}",
        ga.x[0],
        ga.x[1],
        ga.x[2],
        ga.fx,
        ga_evals,
        err(&ga.x)
    );
    println!(
        "kriging (S&Y)     [{:.4}, {:.4}, {:.4}]   {:>10.6}  {:>9}  {:.4}",
        kc.best.x[0],
        kc.best.x[1],
        kc.best.x[2],
        kc.best.fx,
        kc_evals,
        err(&kc.best.x)
    );
}
