//! Facade crate for the model-data-ecosystems workspace.
//!
//! Re-exports every member crate under one roof so workspace-level
//! integration tests and examples can use a single dependency. Library users
//! should depend on the individual `mde-*` crates instead.

pub use mde_abs as abs;
pub use mde_assim as assim;
pub use mde_calibrate as calibrate;
pub use mde_core as core;
pub use mde_harmonize as harmonize;
pub use mde_mcdb as mcdb;
pub use mde_metamodel as metamodel;
pub use mde_numeric as numeric;
pub use mde_server as server;
pub use mde_simopt as simopt;
